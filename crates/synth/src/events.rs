//! Planted ground-truth problem events.
//!
//! Each event scopes a degradation to a combination of session attributes
//! (a site, a CDN, an ASN, a connection type, or a combination) and a time
//! schedule. Because the scope is expressed in the same attribute space the
//! analysis clusters over, every planted event corresponds to an expected
//! critical cluster — the ground truth the validation harness checks
//! recovered clusters against.
//!
//! The schedule mix (persistent / recurring / one-off with heavy-tailed
//! durations) is what produces the paper's prevalence and persistence
//! shapes (Figs. 7–8): recurring events make clusters *prevalent*, long
//! one-off outages make them *persistent*.

use crate::world::{ConnType, Region, World};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use vqlens_delivery::cdn::EdgeModel;
use vqlens_model::attr::{AttrKey, AttrMask, ClusterKey, SessionAttrs};
use vqlens_model::epoch::EpochId;
use vqlens_model::metric::Metric;

/// Attribute scope of an event: which sessions it hits.
///
/// Fields use the generator's dictionary ids, which coincide with world
/// indexes (see `scenario::generate`'s interning order).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EventScope {
    /// Restrict to one site.
    pub site: Option<u32>,
    /// Restrict to one CDN.
    pub cdn: Option<u32>,
    /// Restrict to one ASN.
    pub asn: Option<u32>,
    /// Restrict to one connection type.
    pub conn: Option<ConnType>,
    /// Restrict to live (`true`) or VoD (`false`) content.
    pub live: Option<bool>,
}

impl EventScope {
    /// Does a session with these attributes fall in scope?
    pub fn matches(&self, attrs: &SessionAttrs) -> bool {
        if let Some(site) = self.site {
            if attrs.get(AttrKey::Site) != site {
                return false;
            }
        }
        if let Some(cdn) = self.cdn {
            if attrs.get(AttrKey::Cdn) != cdn {
                return false;
            }
        }
        if let Some(asn) = self.asn {
            if attrs.get(AttrKey::Asn) != asn {
                return false;
            }
        }
        if let Some(conn) = self.conn {
            if attrs.get(AttrKey::ConnType) != conn.index() as u32 {
                return false;
            }
        }
        if let Some(live) = self.live {
            if attrs.get(AttrKey::VodOrLive) != u32::from(live) {
                return false;
            }
        }
        true
    }

    /// The cluster key this scope corresponds to — the critical cluster the
    /// analysis is expected to recover.
    pub fn expected_cluster(&self) -> ClusterKey {
        let mut values = [0u32; 7];
        let mut mask = AttrMask::EMPTY;
        if let Some(site) = self.site {
            values[AttrKey::Site.index()] = site;
            mask = mask.with(AttrKey::Site);
        }
        if let Some(cdn) = self.cdn {
            values[AttrKey::Cdn.index()] = cdn;
            mask = mask.with(AttrKey::Cdn);
        }
        if let Some(asn) = self.asn {
            values[AttrKey::Asn.index()] = asn;
            mask = mask.with(AttrKey::Asn);
        }
        if let Some(conn) = self.conn {
            values[AttrKey::ConnType.index()] = conn.index() as u32;
            mask = mask.with(AttrKey::ConnType);
        }
        if let Some(live) = self.live {
            values[AttrKey::VodOrLive.index()] = u32::from(live);
            mask = mask.with(AttrKey::VodOrLive);
        }
        ClusterKey::new(mask, values)
    }

    /// Number of constrained attributes.
    pub fn arity(&self) -> u32 {
        self.expected_cluster().depth()
    }
}

/// What an active event does to in-scope sessions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EventEffect {
    /// Multiplier on path bandwidth (1.0 = untouched).
    pub path_factor: f64,
    /// Additive edge modifier (see [`EdgeModel::combined_with`]).
    pub edge: EdgeModel,
}

impl EventEffect {
    /// No-op effect.
    pub fn neutral() -> EventEffect {
        EventEffect {
            path_factor: 1.0,
            edge: EdgeModel::neutral(),
        }
    }

    /// Network congestion: bandwidth cut to `factor`.
    pub fn congestion(factor: f64) -> EventEffect {
        EventEffect {
            path_factor: factor.clamp(0.01, 1.0),
            edge: EdgeModel::neutral(),
        }
    }

    /// Edge/origin overload: slow first byte, throttled, some failures.
    pub fn overload(severity: f64) -> EventEffect {
        let severity = severity.clamp(0.0, 1.0);
        EventEffect {
            path_factor: 1.0,
            edge: EdgeModel {
                first_byte_ms: 1_200.0 * severity,
                join_fail_prob: 0.04 * severity,
                throughput_factor: 1.0 - 0.65 * severity,
                module_load_ms: 0.0,
            },
        }
    }

    /// Outright delivery breakage: a large share of joins fail.
    pub fn join_breakage(fail_prob: f64) -> EventEffect {
        EventEffect {
            path_factor: 1.0,
            edge: EdgeModel {
                join_fail_prob: fail_prob.clamp(0.0, 1.0),
                ..EdgeModel::neutral()
            },
        }
    }

    /// Slow player-module host: join delay only.
    pub fn slow_modules(extra_ms: f64) -> EventEffect {
        EventEffect {
            path_factor: 1.0,
            edge: EdgeModel {
                module_load_ms: extra_ms.max(0.0),
                ..EdgeModel::neutral()
            },
        }
    }

    /// Total order over effects by raw float bit patterns.
    ///
    /// Floating-point multiplication and addition are commutative but not
    /// associative, so applying two *different* effects in spec order vs
    /// reversed order can differ in the last ULP. Sorting active events by
    /// this key before application (see `scenario::generate_epoch`) makes
    /// overlapping-event composition bit-identical regardless of insertion
    /// order in the scenario spec: equal keys mean equal effects, and equal
    /// effects contribute identically in any order.
    pub fn canonical_key(&self) -> [u64; 5] {
        [
            self.path_factor.to_bits(),
            self.edge.first_byte_ms.to_bits(),
            self.edge.join_fail_prob.to_bits(),
            self.edge.throughput_factor.to_bits(),
            self.edge.module_load_ms.to_bits(),
        ]
    }
}

/// When an event is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventSchedule {
    /// Active for the whole trace (chronic issues).
    Persistent,
    /// Active `duty_h` hours out of every `period_h`, offset by `phase_h`
    /// (e.g. prime-time overloads).
    Recurring {
        /// Cycle length in hours.
        period_h: u32,
        /// Active hours per cycle.
        duty_h: u32,
        /// Cycle offset in hours.
        phase_h: u32,
    },
    /// One contiguous outage.
    OneOff {
        /// First active epoch.
        start: u32,
        /// Active length in hours.
        len_h: u32,
    },
}

impl EventSchedule {
    /// Is the event active in `epoch`?
    ///
    /// Range semantics are inclusive-start, exclusive-end: a `OneOff` with
    /// `start = s, len_h = n` is active at exactly epochs `s .. s + n`. The
    /// arithmetic is carried out so that no boundary input can overflow:
    /// `start + len_h` may exceed `u32::MAX` and a recurring phase near
    /// `u32::MAX` must not wrap the epoch counter.
    pub fn active_at(&self, epoch: EpochId) -> bool {
        match *self {
            EventSchedule::Persistent => true,
            EventSchedule::Recurring {
                period_h,
                duty_h,
                phase_h,
            } => {
                if period_h == 0 {
                    return false;
                }
                (u64::from(epoch.0) + u64::from(phase_h)) % u64::from(period_h) < u64::from(duty_h)
            }
            EventSchedule::OneOff { start, len_h } => epoch.0 >= start && epoch.0 - start < len_h,
        }
    }
}

/// A planted ground-truth problem event.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlantedEvent {
    /// Stable identifier.
    pub id: u32,
    /// Human-readable description of the cause.
    pub name: String,
    /// Which sessions it hits.
    pub scope: EventScope,
    /// What it does to them.
    pub effect: EventEffect,
    /// When it is active.
    pub schedule: EventSchedule,
    /// The metrics this event is primarily expected to degrade (a label
    /// for validation and reporting, not used by the simulator).
    pub expected_metrics: Vec<Metric>,
}

/// A flash crowd (the paper's reference \[28\] phenomenon): a surge of extra
/// live viewers onto one site for a bounded window. The *traffic* surge
/// lives here; its QoE consequence (origin overload) is planted as a
/// matching [`PlantedEvent`] so detection can be validated uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlashCrowd {
    /// The site hosting the live event.
    pub site: u32,
    /// First epoch of the surge.
    pub start: u32,
    /// Surge length in hours.
    pub len_h: u32,
    /// Extra arrivals during the surge, as a fraction of the trace's base
    /// rate (0.25 = +25 % of all traffic heads to this site's live event).
    pub extra_traffic: f64,
}

impl FlashCrowd {
    /// Is the surge active in `epoch`? Inclusive start, exclusive end,
    /// overflow-safe like [`EventSchedule::active_at`].
    pub fn active_at(&self, epoch: EpochId) -> bool {
        epoch.0 >= self.start && epoch.0 - self.start < self.len_h
    }
}

/// A gradual CDN infrastructure migration (the YouLighter scenario): over a
/// ramp window, one site's traffic that would have been served by `from_cdn`
/// is progressively redirected to `to_cdn`, shifting cluster membership
/// mid-trace without any planted quality event of its own.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CdnMigration {
    /// The migrating site (world index / dictionary id).
    pub site: u32,
    /// CDN the traffic leaves.
    pub from_cdn: u32,
    /// CDN the traffic lands on.
    pub to_cdn: u32,
    /// First epoch with any shifted traffic.
    pub start: u32,
    /// Epochs from first shift to 100 % shifted. `0` means a hard cutover
    /// at `start`.
    pub ramp_h: u32,
}

impl CdnMigration {
    /// Fraction of the site's `from_cdn` traffic redirected at `epoch`:
    /// 0 before `start`, ramping linearly so the first active epoch already
    /// shifts `1/ramp_h` and epoch `start + ramp_h - 1` shifts all of it.
    pub fn shifted_fraction(&self, epoch: EpochId) -> f64 {
        if epoch.0 < self.start {
            return 0.0;
        }
        if self.ramp_h == 0 {
            return 1.0;
        }
        let into = f64::from(epoch.0 - self.start);
        ((into + 1.0) / f64::from(self.ramp_h)).min(1.0)
    }
}

/// Engagement/churn feedback: once quality problems hit a scope, a fraction
/// of its would-be viewers stop showing up. Applied to organic arrivals
/// after event effects are known, so the problem population shrinks while
/// the problem persists — the hard case for per-epoch significance floors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChurnRule {
    /// Which arrivals churn away.
    pub scope: EventScope,
    /// First epoch the churn applies (inclusive; active through trace end).
    pub onset: u32,
    /// Fraction of in-scope arrivals lost per epoch once active.
    pub drop_frac: f64,
}

impl ChurnRule {
    /// Is the churn in force at `epoch`?
    pub fn active_at(&self, epoch: EpochId) -> bool {
        epoch.0 >= self.onset
    }
}

/// The full set of planted events for a scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GroundTruth {
    /// All planted events.
    pub events: Vec<PlantedEvent>,
    /// Flash-crowd traffic surges (each paired with a planted overload
    /// event in `events`).
    pub flash_crowds: Vec<FlashCrowd>,
    /// Gradual CDN migrations shifting cluster membership mid-trace.
    #[serde(default)]
    pub migrations: Vec<CdnMigration>,
    /// Churn-feedback rules shrinking the session population.
    #[serde(default)]
    pub churn: Vec<ChurnRule>,
}

/// One row of the machine-readable ground-truth manifest: which attribute
/// cluster a planted event should surface as, on which metrics, over which
/// epoch ranges.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ManifestEntry {
    /// [`PlantedEvent::id`] of the source event.
    pub event_id: u32,
    /// [`PlantedEvent::name`] of the source event.
    pub name: String,
    /// The attribute cluster the event's scope projects to.
    pub cluster: ClusterKey,
    /// Metrics the event is expected to degrade.
    pub metrics: Vec<Metric>,
    /// Active epoch ranges as half-open `[start, end)` pairs, clipped to
    /// the trace length the manifest was built for.
    pub ranges: Vec<(u32, u32)>,
}

impl ManifestEntry {
    /// Is the event active at `epoch` according to this manifest row?
    pub fn covers(&self, epoch: EpochId) -> bool {
        self.ranges
            .iter()
            .any(|&(s, e)| epoch.0 >= s && epoch.0 < e)
    }
}

impl GroundTruth {
    /// Ground truth with events only (no flash crowds, migrations, churn).
    pub fn from_events(events: Vec<PlantedEvent>) -> GroundTruth {
        GroundTruth {
            events,
            flash_crowds: Vec::new(),
            migrations: Vec::new(),
            churn: Vec::new(),
        }
    }

    /// The machine-readable manifest: one entry per planted event, with its
    /// expected cluster, metrics, and active epoch ranges over a trace of
    /// `epochs` epochs. Ranges are derived from the schedule itself, so the
    /// manifest stays correct for recurring and persistent schedules too.
    pub fn manifest(&self, epochs: u32) -> Vec<ManifestEntry> {
        self.events
            .iter()
            .map(|event| {
                let mut ranges = Vec::new();
                let mut open: Option<u32> = None;
                for ep in 0..epochs {
                    let on = event.schedule.active_at(EpochId(ep));
                    match (on, open) {
                        (true, None) => open = Some(ep),
                        (false, Some(s)) => {
                            ranges.push((s, ep));
                            open = None;
                        }
                        _ => {}
                    }
                }
                if let Some(s) = open {
                    ranges.push((s, epochs));
                }
                ManifestEntry {
                    event_id: event.id,
                    name: event.name.clone(),
                    cluster: event.scope.expected_cluster(),
                    metrics: event.expected_metrics.clone(),
                    ranges,
                }
            })
            .collect()
    }

    /// Indexes of events active in `epoch`.
    pub fn active_at(&self, epoch: EpochId) -> Vec<usize> {
        self.events
            .iter()
            .enumerate()
            .filter(|(_, e)| e.schedule.active_at(epoch))
            .map(|(i, _)| i)
            .collect()
    }

    /// Number of planted events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events were planted.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Event-population configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EventPlanConfig {
    /// Total number of planted events.
    pub n_events: usize,
    /// RNG seed for the plan.
    pub seed: u64,
    /// Number of epochs in the trace (one-off events are placed inside).
    pub epochs: u32,
}

impl EventPlanConfig {
    /// Defaults matched to the two-week default scenario.
    pub fn default_for(epochs: u32) -> EventPlanConfig {
        EventPlanConfig {
            n_events: 260,
            seed: 0x5eed_0002,
            epochs,
        }
    }
}

/// Generate the planted-event population for a world.
///
/// The category mix follows the paper's Figure 10 breakdown (Site-scoped
/// causes dominate, then CDN, ASN, connection type, and combinations) and
/// its Table 3 anecdotes (single-bitrate sites, in-house CDNs, Asian ISPs,
/// mobile wireless, remote player modules, low-priority sites on one
/// global CDN).
pub fn plan_events(world: &World, config: &EventPlanConfig) -> GroundTruth {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut events = Vec::with_capacity(config.n_events);

    // Popularity-weighted entity pickers: events must hit entities with
    // enough traffic to be statistically visible (tail entities are hit
    // occasionally and end up as the paper's unattributed residue).
    // Weight exponent < 1 flattens the Zipf head: without it, several
    // independent events stack on the same top sites and the global problem
    // ratio explodes far past the paper's levels.
    let site_weights: Vec<f64> = world.sites.iter().map(|s| s.weight.powf(0.5)).collect();
    let asn_weights: Vec<f64> = world.asns.iter().map(|a| a.weight.powf(0.5)).collect();
    let mut used_scopes: std::collections::HashSet<EventScope> = std::collections::HashSet::new();

    let mut id = 0u32;
    let mut push = |events: &mut Vec<PlantedEvent>,
                    name: String,
                    scope: EventScope,
                    effect: EventEffect,
                    schedule: EventSchedule,
                    expected: Vec<Metric>| {
        events.push(PlantedEvent {
            id,
            name,
            scope,
            effect,
            schedule,
            expected_metrics: expected,
        });
        id += 1;
    };

    let mut attempts = 0usize;
    while events.len() < config.n_events && attempts < config.n_events * 20 {
        attempts += 1;
        let schedule = sample_schedule(&mut rng, config.epochs);
        let category = rng.gen::<f64>();
        if category < 0.50 {
            // --- Site-scoped causes (dominant in Fig. 10). ---------------
            let site = crate::world::sample_weighted(&mut rng, &site_weights) as u32;
            let scope = EventScope {
                site: Some(site),
                ..EventScope::default()
            };
            if !used_scopes.insert(scope) {
                continue;
            }
            match if rng.gen::<f64>() < 0.75 {
                rng.gen_range(0..2u8)
            } else {
                2u8
            } {
                0 => push(
                    &mut events,
                    format!("site-{site} packaging/config breakage"),
                    scope,
                    EventEffect::join_breakage(rng.gen_range(0.15..0.45)),
                    schedule,
                    vec![Metric::JoinFailure],
                ),
                1 => push(
                    &mut events,
                    format!("site-{site} origin overload"),
                    scope,
                    EventEffect::overload(rng.gen_range(0.3..0.7)),
                    schedule,
                    vec![Metric::BufRatio, Metric::JoinTime],
                ),
                _ => push(
                    &mut events,
                    format!("site-{site} slow player-module host"),
                    scope,
                    EventEffect::slow_modules(rng.gen_range(5_000.0..11_000.0)),
                    schedule,
                    vec![Metric::JoinTime],
                ),
            }
        } else if category < 0.68 {
            // --- CDN-scoped causes. --------------------------------------
            let cdn = rng.gen_range(0..world.cdns.len()) as u32;
            let scope = EventScope {
                cdn: Some(cdn),
                ..EventScope::default()
            };
            if !used_scopes.insert(scope) {
                continue;
            }
            if rng.gen::<f64>() < 0.6 {
                push(
                    &mut events,
                    format!("cdn-{cdn} edge overload"),
                    scope,
                    EventEffect::overload(rng.gen_range(0.3..0.65)),
                    schedule,
                    vec![Metric::BufRatio, Metric::JoinTime],
                );
            } else {
                push(
                    &mut events,
                    format!("cdn-{cdn} delivery failures"),
                    scope,
                    EventEffect::join_breakage(rng.gen_range(0.08..0.25)),
                    schedule,
                    vec![Metric::JoinFailure],
                );
            }
        } else if category < 0.82 {
            // --- ASN-scoped causes (Asian ISPs prominent in Table 3). ----
            let asn = crate::world::sample_weighted(&mut rng, &asn_weights) as u32;
            let scope = EventScope {
                asn: Some(asn),
                ..EventScope::default()
            };
            if !used_scopes.insert(scope) {
                continue;
            }
            let severity = rng.gen_range(0.15..0.5);
            push(
                &mut events,
                format!("asn-{asn} congestion"),
                scope,
                EventEffect::congestion(severity),
                schedule,
                vec![Metric::Bitrate, Metric::BufRatio],
            );
        } else if category < 0.86 {
            // --- Connection-type causes (mobile wireless). ----------------
            // These blanket a double-digit share of all traffic, so they
            // are mild and duty-cycled (busy-hour radio congestion), never
            // persistent — otherwise they dominate the global problem
            // ratio instead of showing up as a recurrent critical cluster.
            let conn = if rng.gen::<f64>() < 0.7 {
                ConnType::Mobile
            } else {
                ConnType::FixedWireless
            };
            let scope = EventScope {
                conn: Some(conn),
                ..EventScope::default()
            };
            if !used_scopes.insert(scope) {
                continue;
            }
            push(
                &mut events,
                format!(
                    "{} radio-network degradation",
                    ConnType::NAMES[conn.index()]
                ),
                scope,
                EventEffect::congestion(rng.gen_range(0.55..0.8)),
                EventSchedule::Recurring {
                    period_h: 24,
                    duty_h: rng.gen_range(2..=4),
                    phase_h: rng.gen_range(0..24),
                },
                vec![Metric::Bitrate],
            );
        } else {
            // --- Combination causes. --------------------------------------
            match rng.gen_range(0..3u8) {
                0 => {
                    // Bad peering between one ASN and one CDN: the classic
                    // two-attribute phase transition (paper Fig. 5).
                    let asn = crate::world::sample_weighted(&mut rng, &asn_weights) as u32;
                    let cdn = rng.gen_range(0..world.cdns.len()) as u32;
                    let scope = EventScope {
                        asn: Some(asn),
                        cdn: Some(cdn),
                        ..EventScope::default()
                    };
                    if !used_scopes.insert(scope) {
                        continue;
                    }
                    push(
                        &mut events,
                        format!("asn-{asn} x cdn-{cdn} bad peering"),
                        scope,
                        EventEffect::congestion(rng.gen_range(0.12..0.35)),
                        schedule,
                        vec![Metric::BufRatio, Metric::Bitrate],
                    );
                }
                1 => {
                    // A site whose mobile packaging is broken.
                    let site = crate::world::sample_weighted(&mut rng, &site_weights) as u32;
                    let scope = EventScope {
                        site: Some(site),
                        conn: Some(ConnType::Mobile),
                        ..EventScope::default()
                    };
                    if !used_scopes.insert(scope) {
                        continue;
                    }
                    push(
                        &mut events,
                        format!("site-{site} mobile packaging breakage"),
                        scope,
                        EventEffect::join_breakage(rng.gen_range(0.15..0.4)),
                        schedule,
                        vec![Metric::JoinFailure],
                    );
                }
                _ => {
                    // A live-streaming origin that melts under live load.
                    let site = crate::world::sample_weighted(&mut rng, &site_weights) as u32;
                    let scope = EventScope {
                        site: Some(site),
                        live: Some(true),
                        ..EventScope::default()
                    };
                    if !used_scopes.insert(scope) {
                        continue;
                    }
                    push(
                        &mut events,
                        format!("site-{site} live-origin overload"),
                        scope,
                        EventEffect::overload(rng.gen_range(0.4..0.8)),
                        schedule,
                        vec![Metric::BufRatio, Metric::JoinTime],
                    );
                }
            }
        }
    }

    let _ = Region::ALL; // regions shape the world; events are attribute-scoped
                         // A handful of flash crowds on live-heavy popular sites: a big traffic
                         // surge paired with a planted origin-overload event over the same
                         // window, so the surge's QoE damage is part of the validated truth.
    let mut flash_crowds = Vec::new();
    let live_sites: Vec<u32> = world
        .sites
        .iter()
        .enumerate()
        .filter(|(_, s)| s.live_fraction > 0.3)
        .map(|(i, _)| i as u32)
        .collect();
    let n_crowds = (config.n_events / 80).clamp(1, 4);
    for _ in 0..n_crowds {
        if live_sites.is_empty() {
            break;
        }
        let site = live_sites[rng.gen_range(0..live_sites.len())];
        let len_h = rng.gen_range(2..=5);
        let start = rng.gen_range(0..config.epochs.saturating_sub(len_h).max(1));
        flash_crowds.push(FlashCrowd {
            site,
            start,
            len_h,
            extra_traffic: rng.gen_range(0.1..0.3),
        });
        events.push(PlantedEvent {
            id: events.len() as u32,
            name: format!("site-{site} flash-crowd origin overload"),
            scope: EventScope {
                site: Some(site),
                live: Some(true),
                ..EventScope::default()
            },
            effect: EventEffect::overload(rng.gen_range(0.5..0.85)),
            schedule: EventSchedule::OneOff { start, len_h },
            expected_metrics: vec![Metric::BufRatio, Metric::JoinTime],
        });
    }

    GroundTruth {
        events,
        flash_crowds,
        migrations: Vec::new(),
        churn: Vec::new(),
    }
}

/// Sample a schedule: 10 % persistent, 40 % recurring, 50 % one-off with a
/// log-normal duration whose median is ~4 h and whose tail exceeds a day
/// (paper Fig. 8).
fn sample_schedule<R: Rng + ?Sized>(rng: &mut R, epochs: u32) -> EventSchedule {
    let x = rng.gen::<f64>();
    if x < 0.10 {
        EventSchedule::Persistent
    } else if x < 0.50 {
        let period_h = *[6u32, 12, 24, 24, 48]
            .get(rng.gen_range(0..5usize))
            .expect("period table");
        let duty_h = rng.gen_range(2..=(period_h / 3).max(2));
        EventSchedule::Recurring {
            period_h,
            duty_h,
            phase_h: rng.gen_range(0..period_h),
        }
    } else {
        // Log-normal duration: ln-median ln(4h), sigma 1.1 =>
        // P(len > 24h) ≈ 5 %.
        let z = vqlens_delivery::path::gaussian(rng);
        let len_h = (4.0f64 * (1.1 * z).exp()).round().clamp(1.0, 96.0) as u32;
        let start = rng.gen_range(0..epochs.saturating_sub(1).max(1));
        EventSchedule::OneOff { start, len_h }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;

    #[test]
    fn scope_matching_and_expected_cluster_agree() {
        let scope = EventScope {
            site: Some(7),
            conn: Some(ConnType::Mobile),
            ..EventScope::default()
        };
        let hit = SessionAttrs::new([3, 2, 7, 0, 1, 1, ConnType::Mobile.index() as u32]);
        let miss_site = SessionAttrs::new([3, 2, 8, 0, 1, 1, ConnType::Mobile.index() as u32]);
        let miss_conn = SessionAttrs::new([3, 2, 7, 0, 1, 1, ConnType::Dsl.index() as u32]);
        assert!(scope.matches(&hit));
        assert!(!scope.matches(&miss_site));
        assert!(!scope.matches(&miss_conn));

        let key = scope.expected_cluster();
        assert_eq!(key.depth(), 2);
        assert!(key.generalizes(hit.leaf_key()));
        assert!(!key.generalizes(miss_site.leaf_key()));
        assert_eq!(scope.arity(), 2);
    }

    #[test]
    fn empty_scope_matches_everything() {
        let scope = EventScope::default();
        assert!(scope.matches(&SessionAttrs::new([1, 2, 3, 1, 0, 2, 4])));
        assert_eq!(scope.expected_cluster(), ClusterKey::ROOT);
    }

    #[test]
    fn schedules_activate_correctly() {
        assert!(EventSchedule::Persistent.active_at(EpochId(0)));
        assert!(EventSchedule::Persistent.active_at(EpochId(999)));

        let rec = EventSchedule::Recurring {
            period_h: 24,
            duty_h: 3,
            phase_h: 0,
        };
        assert!(rec.active_at(EpochId(0)));
        assert!(rec.active_at(EpochId(2)));
        assert!(!rec.active_at(EpochId(3)));
        assert!(rec.active_at(EpochId(24)));

        let one = EventSchedule::OneOff {
            start: 10,
            len_h: 4,
        };
        assert!(!one.active_at(EpochId(9)));
        assert!(one.active_at(EpochId(10)));
        assert!(one.active_at(EpochId(13)));
        assert!(!one.active_at(EpochId(14)));
    }

    /// Pins the inclusive-start / exclusive-end semantics at every boundary
    /// an event can be planted on, including the integer edges where the
    /// old arithmetic (`epoch + phase`, `start + len_h`) overflowed u32.
    #[test]
    fn schedule_boundaries_are_inclusive_exclusive_and_overflow_safe() {
        // Event starting at epoch 0 affects exactly [0, len).
        let at_zero = EventSchedule::OneOff { start: 0, len_h: 3 };
        assert!(at_zero.active_at(EpochId(0)));
        assert!(at_zero.active_at(EpochId(2)));
        assert!(!at_zero.active_at(EpochId(3)));

        // Zero-length event affects nothing, not even its start epoch.
        let empty = EventSchedule::OneOff { start: 5, len_h: 0 };
        assert!(!empty.active_at(EpochId(5)));

        // An event whose window extends past u32::MAX must stay active to
        // the end of any trace instead of wrapping around to inactive.
        let tail = EventSchedule::OneOff {
            start: u32::MAX - 1,
            len_h: 10,
        };
        assert!(!tail.active_at(EpochId(u32::MAX - 2)));
        assert!(tail.active_at(EpochId(u32::MAX - 1)));
        assert!(tail.active_at(EpochId(u32::MAX)));

        // Recurring phase near u32::MAX must not wrap the epoch counter.
        let phased = EventSchedule::Recurring {
            period_h: 24,
            duty_h: 3,
            phase_h: u32::MAX,
        };
        for ep in 0..48 {
            let expect = (u64::from(ep) + u64::from(u32::MAX)) % 24 < 3;
            assert_eq!(phased.active_at(EpochId(ep)), expect, "epoch {ep}");
        }

        // Degenerate periods: 0 is never active (not a division panic);
        // duty >= period is always active.
        let dead = EventSchedule::Recurring {
            period_h: 0,
            duty_h: 1,
            phase_h: 0,
        };
        assert!(!dead.active_at(EpochId(0)));
        assert!(!dead.active_at(EpochId(7)));
        let saturated = EventSchedule::Recurring {
            period_h: 4,
            duty_h: 4,
            phase_h: 2,
        };
        for ep in 0..12 {
            assert!(saturated.active_at(EpochId(ep)));
        }

        // Flash crowds share the one-off semantics.
        let crowd = FlashCrowd {
            site: 0,
            start: u32::MAX - 1,
            len_h: 5,
            extra_traffic: 0.2,
        };
        assert!(!crowd.active_at(EpochId(u32::MAX - 2)));
        assert!(crowd.active_at(EpochId(u32::MAX)));
    }

    #[test]
    fn manifest_ranges_agree_with_the_schedule() {
        let mk = |schedule| PlantedEvent {
            id: 7,
            name: "m".into(),
            scope: EventScope {
                cdn: Some(1),
                ..EventScope::default()
            },
            effect: EventEffect::overload(0.5),
            schedule,
            expected_metrics: vec![Metric::BufRatio],
        };

        // One-off clipped to the trace end.
        let gt = GroundTruth::from_events(vec![mk(EventSchedule::OneOff {
            start: 20,
            len_h: 50,
        })]);
        let m = gt.manifest(24);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].ranges, vec![(20, 24)]);
        assert_eq!(m[0].cluster, gt.events[0].scope.expected_cluster());

        // Recurring decomposes into one range per duty window; every epoch
        // in [0, epochs) is covered iff the schedule is active there.
        let gt = GroundTruth::from_events(vec![mk(EventSchedule::Recurring {
            period_h: 12,
            duty_h: 4,
            phase_h: 2,
        })]);
        let m = gt.manifest(30);
        for ep in 0..30 {
            assert_eq!(
                m[0].covers(EpochId(ep)),
                gt.events[0].schedule.active_at(EpochId(ep)),
                "epoch {ep}"
            );
        }
        // Half-open ranges never touch and never extend past the trace.
        for w in m[0].ranges.windows(2) {
            assert!(w[0].1 < w[1].0);
        }
        assert!(m[0].ranges.iter().all(|&(s, e)| s < e && e <= 30));

        // Persistent is one full-trace range.
        let gt = GroundTruth::from_events(vec![mk(EventSchedule::Persistent)]);
        assert_eq!(gt.manifest(16)[0].ranges, vec![(0, 16)]);
    }

    #[test]
    fn migration_ramp_and_churn_boundaries() {
        let mig = CdnMigration {
            site: 3,
            from_cdn: 1,
            to_cdn: 4,
            start: 10,
            ramp_h: 4,
        };
        assert_eq!(mig.shifted_fraction(EpochId(9)), 0.0);
        assert!((mig.shifted_fraction(EpochId(10)) - 0.25).abs() < 1e-12);
        assert!((mig.shifted_fraction(EpochId(12)) - 0.75).abs() < 1e-12);
        assert_eq!(mig.shifted_fraction(EpochId(13)), 1.0);
        assert_eq!(mig.shifted_fraction(EpochId(400)), 1.0);

        // Hard cutover.
        let cut = CdnMigration { ramp_h: 0, ..mig };
        assert_eq!(cut.shifted_fraction(EpochId(9)), 0.0);
        assert_eq!(cut.shifted_fraction(EpochId(10)), 1.0);

        let churn = ChurnRule {
            scope: EventScope {
                site: Some(3),
                ..EventScope::default()
            },
            onset: 6,
            drop_frac: 0.5,
        };
        assert!(!churn.active_at(EpochId(5)));
        assert!(churn.active_at(EpochId(6)));
    }

    #[test]
    fn plan_is_deterministic_and_sized() {
        let world = World::generate(&WorldConfig::default());
        let cfg = EventPlanConfig::default_for(336);
        let a = plan_events(&world, &cfg);
        let b = plan_events(&world, &cfg);
        // The plan holds the requested events plus one paired overload
        // event per flash crowd.
        assert_eq!(a.len(), cfg.n_events + a.flash_crowds.len());
        assert_eq!(a.len(), b.len());
        assert_eq!(a.flash_crowds.len(), b.flash_crowds.len());
        for (x, y) in a.events.iter().zip(&b.events) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.scope, y.scope);
            assert_eq!(x.schedule, y.schedule);
        }
    }

    #[test]
    fn plan_covers_the_expected_category_mix() {
        let world = World::generate(&WorldConfig::default());
        let gt = plan_events(&world, &EventPlanConfig::default_for(336));
        let site_only = gt
            .events
            .iter()
            .filter(|e| e.scope.site.is_some() && e.scope.arity() == 1)
            .count();
        let cdn_only = gt
            .events
            .iter()
            .filter(|e| e.scope.cdn.is_some() && e.scope.arity() == 1)
            .count();
        let asn_only = gt
            .events
            .iter()
            .filter(|e| e.scope.asn.is_some() && e.scope.arity() == 1)
            .count();
        let combos = gt.events.iter().filter(|e| e.scope.arity() >= 2).count();
        assert!(site_only > cdn_only, "sites dominate (Fig. 10)");
        assert!(asn_only > 0);
        assert!(combos > 0);
        // Some events must be active in a typical epoch.
        assert!(!gt.active_at(EpochId(50)).is_empty());
    }

    #[test]
    fn some_long_outages_exist() {
        let world = World::generate(&WorldConfig::default());
        let gt = plan_events(
            &world,
            &EventPlanConfig {
                n_events: 600,
                seed: 9,
                epochs: 336,
            },
        );
        let long = gt
            .events
            .iter()
            .filter(|e| matches!(e.schedule, EventSchedule::OneOff { len_h, .. } if len_h >= 24))
            .count();
        assert!(long > 0, "the duration tail must exceed a day");
    }
}

#[cfg(test)]
mod flash_crowd_tests {
    use super::*;
    use crate::world::WorldConfig;

    #[test]
    fn crowds_are_planned_with_paired_events() {
        let world = World::generate(&WorldConfig::default());
        let gt = plan_events(&world, &EventPlanConfig::default_for(336));
        assert!(!gt.flash_crowds.is_empty(), "default plan includes crowds");
        for crowd in &gt.flash_crowds {
            // Every crowd has a paired overload event on the same site and
            // window, restricted to live content.
            let paired = gt.events.iter().find(|e| {
                e.scope.site == Some(crowd.site)
                    && e.scope.live == Some(true)
                    && matches!(
                        e.schedule,
                        EventSchedule::OneOff { start, len_h }
                            if start == crowd.start && len_h == crowd.len_h
                    )
            });
            assert!(
                paired.is_some(),
                "crowd on site {} lacks its event",
                crowd.site
            );
            assert!((0.0..1.0).contains(&crowd.extra_traffic));
            assert!(crowd.active_at(EpochId(crowd.start)));
            assert!(!crowd.active_at(EpochId(crowd.start + crowd.len_h)));
        }
    }
}
