//! Deterministic fault injection over a serialized trace.
//!
//! Real telemetry arrives damaged: deployment studies of production
//! streaming pipelines report malformed, missing, and out-of-range fields
//! as a constant operational reality. This module turns a *clean*
//! serialized trace (the CSV interchange format of `vqlens_model::csv`)
//! into a *damaged* one under a seeded, reproducible plan, together with
//! an exact account of which lines were damaged — so end-to-end tests can
//! prove that lenient ingestion recovers precisely the uncorrupted
//! sessions and that no corruption can panic the pipeline.
//!
//! Two families of operators:
//!
//! * **Per-line** ([`FaultKind::is_per_line`]): mutate individual data
//!   lines in place (truncation, field deletion/transposition, NaN/Inf/
//!   negative numerics, out-of-range epochs). Every mutated line is
//!   guaranteed unparseable, so the summary's corrupted-line list is
//!   exactly the quarantine set a lenient reader must produce.
//! * **Whole-file**: re-encode or restructure the file (CRLF line
//!   endings, UTF-8 BOM, a duplicated header line, mid-file truncation).
//!   CRLF and BOM are lossless — a robust reader accepts them with zero
//!   quarantined lines.
//!
//! A third family, [`NetFault`], damages the *transport* instead of the
//! bytes: torn requests, slowloris dribble, garbage payloads, and
//! mid-stream disconnects driven against a live `vqlens-serve` listener.
//!
//! Injection is pure: the same `(input, plan)` always produces the same
//! output and summary.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use vqlens_model::csv::MAX_EPOCHS;

/// One corruption operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// Cut a data line short, leaving fewer than 13 fields.
    TruncatedLine,
    /// Delete one field from a data line.
    DeletedField,
    /// Swap the epoch field with the vod_or_live field, producing a
    /// non-numeric epoch.
    TransposedFields,
    /// Replace `play_duration_s` with `NaN`.
    NanNumeric,
    /// Replace `buffering_s` with `inf`.
    InfNumeric,
    /// Replace `avg_bitrate_kbps` with a negative value.
    NegativeNumeric,
    /// Replace the epoch with an id beyond the reader's epoch bound.
    OutOfRangeEpoch,
    /// Re-encode the whole file with CRLF line endings (lossless).
    CrlfEndings,
    /// Prepend a UTF-8 byte-order mark (lossless).
    Utf8Bom,
    /// Insert a duplicate header line between two data lines.
    DuplicateHeader,
    /// Truncate the file in the middle of a data line, losing the tail.
    MidFileTruncation,
}

impl FaultKind {
    /// Every operator, for exhaustive sweeps.
    pub const ALL: [FaultKind; 11] = [
        FaultKind::TruncatedLine,
        FaultKind::DeletedField,
        FaultKind::TransposedFields,
        FaultKind::NanNumeric,
        FaultKind::InfNumeric,
        FaultKind::NegativeNumeric,
        FaultKind::OutOfRangeEpoch,
        FaultKind::CrlfEndings,
        FaultKind::Utf8Bom,
        FaultKind::DuplicateHeader,
        FaultKind::MidFileTruncation,
    ];

    /// Short stable name (for logs and test labels).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::TruncatedLine => "truncated-line",
            FaultKind::DeletedField => "deleted-field",
            FaultKind::TransposedFields => "transposed-fields",
            FaultKind::NanNumeric => "nan-numeric",
            FaultKind::InfNumeric => "inf-numeric",
            FaultKind::NegativeNumeric => "negative-numeric",
            FaultKind::OutOfRangeEpoch => "out-of-range-epoch",
            FaultKind::CrlfEndings => "crlf-endings",
            FaultKind::Utf8Bom => "utf8-bom",
            FaultKind::DuplicateHeader => "duplicate-header",
            FaultKind::MidFileTruncation => "mid-file-truncation",
        }
    }

    /// True for operators that damage individual data lines (as opposed to
    /// re-encoding or restructuring the whole file).
    pub fn is_per_line(self) -> bool {
        !matches!(
            self,
            FaultKind::CrlfEndings
                | FaultKind::Utf8Bom
                | FaultKind::DuplicateHeader
                | FaultKind::MidFileTruncation
        )
    }

    /// True when the operator loses no session data (a robust reader
    /// recovers every session with nothing quarantined).
    pub fn is_lossless(self) -> bool {
        matches!(self, FaultKind::CrlfEndings | FaultKind::Utf8Bom)
    }
}

/// A seeded corruption plan: which operator, which RNG stream, and how
/// much of the trace to damage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The corruption operator.
    pub kind: FaultKind,
    /// Seed for target selection and mutation choices.
    pub seed: u64,
    /// Fraction of data lines to damage (per-line operators; at least one
    /// line is always hit). Whole-file operators ignore it.
    pub corrupt_ratio: f64,
}

impl FaultPlan {
    /// A plan damaging ~1% of data lines.
    pub fn new(kind: FaultKind, seed: u64) -> FaultPlan {
        FaultPlan {
            kind,
            seed,
            corrupt_ratio: 0.01,
        }
    }
}

/// Exact account of an injection: which original lines were damaged or
/// lost. Line numbers are 1-based over the *original* input (the header is
/// line 1), matching the line numbers in `CsvError::BadLine` and
/// `IngestReport` samples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSummary {
    /// The operator applied.
    pub kind: FaultKind,
    /// The seed used.
    pub seed: u64,
    /// Original data lines mutated in place (still present, unparseable).
    pub corrupted_lines: Vec<usize>,
    /// Original lines removed outright (the tail lost to mid-file
    /// truncation).
    pub dropped_lines: Vec<usize>,
    /// Non-data lines inserted into the output (e.g. a duplicate header).
    pub inserted_lines: usize,
}

impl FaultSummary {
    /// How many lines a lenient ingest of the damaged trace must
    /// quarantine: the mutated lines plus any inserted junk. Dropped lines
    /// are simply absent and cannot be quarantined.
    pub fn expected_quarantined(&self) -> u64 {
        self.corrupted_lines.len() as u64 + self.inserted_lines as u64
    }
}

/// Pick `count` distinct elements of `pool` (a partial Fisher–Yates
/// shuffle), returned sorted.
fn pick_distinct(rng: &mut SmallRng, pool: &[usize], count: usize) -> Vec<usize> {
    let mut indices: Vec<usize> = pool.to_vec();
    let count = count.min(indices.len());
    for k in 0..count {
        let j = rng.gen_range(k..indices.len());
        indices.swap(k, j);
    }
    indices.truncate(count);
    indices.sort_unstable();
    indices
}

/// Cut `line` just before one of its early commas, guaranteeing fewer
/// than 13 fields remain.
fn truncate_fields(line: &str, rng: &mut SmallRng) -> String {
    let commas: Vec<usize> = line.match_indices(',').map(|(p, _)| p).collect();
    if commas.len() < 8 {
        // Already structurally damaged; make it unmistakably so.
        return "~".to_owned();
    }
    let k = rng.gen_range(2..8);
    line[..commas[k]].to_owned()
}

fn mutate_line(kind: FaultKind, line: &str, rng: &mut SmallRng) -> String {
    if kind == FaultKind::TruncatedLine {
        return truncate_fields(line, rng);
    }
    let mut fields: Vec<String> = line.split(',').map(str::to_owned).collect();
    if fields.len() != 13 {
        return "~".to_owned();
    }
    match kind {
        FaultKind::DeletedField => {
            let victim = rng.gen_range(0..fields.len());
            fields.remove(victim);
        }
        FaultKind::TransposedFields => {
            fields.swap(0, 4);
            // Unconditionally poison the epoch slot: in a pathological
            // trace the vod_or_live name could itself parse as an epoch.
            if fields[0].trim().parse::<u32>().is_ok() {
                fields[0].push('#');
            }
        }
        FaultKind::NanNumeric => fields[10] = "NaN".to_owned(),
        FaultKind::InfNumeric => fields[11] = "inf".to_owned(),
        FaultKind::NegativeNumeric => {
            fields[12] = format!("-{}.5", rng.gen_range(1u32..5000));
        }
        FaultKind::OutOfRangeEpoch => {
            fields[0] = (MAX_EPOCHS + rng.gen_range(0u32..1000)).to_string();
        }
        _ => unreachable!("whole-file operators are handled by inject()"),
    }
    fields.join(",")
}

/// Apply `plan` to a serialized trace, returning the damaged text and the
/// exact summary of the damage. Deterministic in `(csv, plan)`.
pub fn inject(csv: &str, plan: &FaultPlan) -> (String, FaultSummary) {
    let mut rng = SmallRng::seed_from_u64(plan.seed);
    let lines: Vec<&str> = csv.lines().collect();
    let trailing_newline = csv.ends_with('\n');
    // 0-based indices (into `lines`) of non-blank data lines; the header
    // is index 0. Reported line numbers are index + 1.
    let data: Vec<usize> = lines
        .iter()
        .enumerate()
        .skip(1)
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, _)| i)
        .collect();
    let mut summary = FaultSummary {
        kind: plan.kind,
        seed: plan.seed,
        corrupted_lines: Vec::new(),
        dropped_lines: Vec::new(),
        inserted_lines: 0,
    };
    if data.is_empty() {
        return (csv.to_owned(), summary);
    }

    let rejoin = |lines: &[String]| {
        let mut out = lines.join("\n");
        if trailing_newline {
            out.push('\n');
        }
        out
    };

    match plan.kind {
        kind if kind.is_per_line() => {
            let wanted = ((data.len() as f64 * plan.corrupt_ratio).round() as usize).max(1);
            let targets = pick_distinct(&mut rng, &data, wanted);
            let mut out: Vec<String> = lines.iter().map(|l| (*l).to_owned()).collect();
            for &i in &targets {
                out[i] = mutate_line(kind, lines[i], &mut rng);
                summary.corrupted_lines.push(i + 1);
            }
            (rejoin(&out), summary)
        }
        FaultKind::CrlfEndings => {
            let mut out = lines.join("\r\n");
            if trailing_newline {
                out.push_str("\r\n");
            }
            (out, summary)
        }
        FaultKind::Utf8Bom => (format!("\u{feff}{csv}"), summary),
        FaultKind::DuplicateHeader => {
            let mut out: Vec<String> = lines.iter().map(|l| (*l).to_owned()).collect();
            // Insert after a random data line.
            let at = data[rng.gen_range(0..data.len())] + 1;
            out.insert(at, lines[0].to_owned());
            summary.inserted_lines = 1;
            (rejoin(&out), summary)
        }
        FaultKind::MidFileTruncation => {
            let t = data[rng.gen_range(0..data.len())];
            let mut out: Vec<String> = lines[..t].iter().map(|l| (*l).to_owned()).collect();
            out.push(truncate_fields(lines[t], &mut rng));
            summary.corrupted_lines.push(t + 1);
            summary.dropped_lines = ((t + 1)..lines.len())
                .filter(|i| !lines[*i].trim().is_empty())
                .map(|i| i + 1)
                .collect();
            // A mid-line cut has no trailing newline by definition.
            (out.join("\n"), summary)
        }
        _ => unreachable!("per-line operators matched above"),
    }
}

/// One mid-run interruption operator over a checkpoint directory — the
/// on-disk aftermath of a `vqlens analyze --checkpoint` run that died.
///
/// Where [`FaultKind`] damages the *input* (the serialized trace),
/// `InterruptKind` damages the *recovery state*: it edits a checkpoint
/// directory into the exact shape a killed or crashed run leaves behind,
/// so kill/resume tests can prove a resumed run reconstructs the
/// uninterrupted result from any of these states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InterruptKind {
    /// The process was killed after `keep_epochs` epochs had been
    /// checkpointed: every later epoch file is deleted.
    KillAfter {
        /// Epoch files (in sorted order) that survive the kill.
        keep_epochs: usize,
    },
    /// A writer died mid-write, leaving a partial `*.tmp` next to the
    /// committed files (readers must skip it).
    TornTempFile,
    /// A committed epoch file was truncated in half (e.g. the filesystem
    /// lost the tail); readers must treat it as absent and recompute.
    TruncatedCheckpoint,
}

/// Exact account of an [`interrupt_checkpoints`] application.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InterruptSummary {
    /// The operator applied.
    pub kind: InterruptKind,
    /// Epoch files removed outright.
    pub removed_files: Vec<String>,
    /// Files damaged in place or planted as torn temp files.
    pub damaged_files: Vec<String>,
    /// Epoch files left valid — the epochs a resume may legitimately skip.
    pub surviving_files: Vec<String>,
}

/// Apply a mid-run interruption to a checkpoint directory. Deterministic
/// in `(directory contents, kind, seed)`: epoch files are considered in
/// sorted name order and the seed drives any victim choice. Non-epoch
/// files (the manifest) are never touched — a kill does not corrupt
/// already-committed state, it only loses in-flight work.
pub fn interrupt_checkpoints(
    dir: &std::path::Path,
    kind: InterruptKind,
    seed: u64,
) -> std::io::Result<InterruptSummary> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut epoch_files: Vec<String> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("epoch-") && n.ends_with(".json"))
        .collect();
    epoch_files.sort();
    let mut summary = InterruptSummary {
        kind,
        removed_files: Vec::new(),
        damaged_files: Vec::new(),
        surviving_files: Vec::new(),
    };
    match kind {
        InterruptKind::KillAfter { keep_epochs } => {
            let keep = keep_epochs.min(epoch_files.len());
            summary.surviving_files = epoch_files[..keep].to_vec();
            for name in &epoch_files[keep..] {
                std::fs::remove_file(dir.join(name))?;
                summary.removed_files.push(name.clone());
            }
        }
        InterruptKind::TornTempFile => {
            // The partial write a killed AtomicFile writer leaves behind:
            // a recognizable `.tmp` holding an unfinished JSON object.
            let torn = format!("epoch-{:08}.json.0.{}.tmp", rng.gen_range(0u32..100), seed);
            std::fs::write(dir.join(&torn), b"{\"epoch\":")?;
            summary.damaged_files.push(torn);
            summary.surviving_files = epoch_files;
        }
        InterruptKind::TruncatedCheckpoint => {
            if !epoch_files.is_empty() {
                let victim = epoch_files.remove(rng.gen_range(0..epoch_files.len()));
                let path = dir.join(&victim);
                let bytes = std::fs::read(&path)?;
                std::fs::write(&path, &bytes[..bytes.len() / 2])?;
                summary.damaged_files.push(victim);
            }
            summary.surviving_files = epoch_files;
        }
    }
    Ok(summary)
}

/// Network-level fault operators for driving an ingest server
/// (`vqlens-serve`) from a hostile client's seat. Where [`FaultKind`]
/// damages the *bytes* of a trace, these damage the *transport*: torn
/// requests, slowloris dribble, garbage payloads, and mid-stream
/// disconnects. Each drives one deterministic TCP exchange via
/// [`send_faulty_ingest`]; the server must answer with a precise status
/// (or observe a clean disconnect) and keep serving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFault {
    /// Send half of the request head, then close the write side: the
    /// server must treat it as a disconnect, not hang a handler.
    TornRequest,
    /// Dribble the body in tiny chunks with a delay between each; with a
    /// total duration beyond the server's read deadline this is a
    /// slowloris probe and must be answered `408`.
    SlowClient {
        /// Bytes written per chunk.
        chunk_bytes: usize,
        /// Sleep between chunks.
        delay: std::time::Duration,
    },
    /// A well-framed POST whose body is not UTF-8: rejected `400` and
    /// dead-lettered, never accepted.
    GarbageBody,
    /// Declare a full `Content-Length`, send half the body, and drop the
    /// connection without shutdown.
    MidStreamDisconnect,
    /// Not a wire behavior: a plan marker telling the test harness to
    /// kill the server process/handle after `acks` acknowledged batches
    /// and assert WAL-replay equivalence on restart.
    KillServerAfterN {
        /// Acknowledged batches to allow before the kill.
        acks: u32,
    },
}

impl NetFault {
    /// Stable operator name for logs and reports.
    pub fn name(self) -> &'static str {
        match self {
            NetFault::TornRequest => "torn-request",
            NetFault::SlowClient { .. } => "slow-client",
            NetFault::GarbageBody => "garbage-body",
            NetFault::MidStreamDisconnect => "mid-stream-disconnect",
            NetFault::KillServerAfterN { .. } => "kill-server-after-n",
        }
    }
}

/// Drive one faulty `POST /ingest` exchange against `addr`, returning
/// the server's raw HTTP response if one was received (`None` when the
/// fault forecloses a response, as for [`NetFault::MidStreamDisconnect`]).
/// [`NetFault::KillServerAfterN`] performs a *clean* exchange — the kill
/// itself is the harness's job.
pub fn send_faulty_ingest(
    addr: &std::net::SocketAddr,
    fault: NetFault,
    payload: &str,
) -> std::io::Result<Option<String>> {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(std::time::Duration::from_secs(10)))?;
    let head = format!(
        "POST /ingest HTTP/1.1\r\nHost: vqlens\r\nContent-Length: {}\r\n\r\n",
        payload.len()
    );
    match fault {
        NetFault::TornRequest => {
            let torn = &head.as_bytes()[..head.len() / 2];
            stream.write_all(torn)?;
            stream.shutdown(std::net::Shutdown::Write)?;
        }
        NetFault::SlowClient { chunk_bytes, delay } => {
            stream.write_all(head.as_bytes())?;
            for chunk in payload.as_bytes().chunks(chunk_bytes.max(1)) {
                // The server's read deadline may fire mid-dribble and
                // reset the connection; that is the outcome under test,
                // not a harness failure.
                if stream.write_all(chunk).is_err() {
                    break;
                }
                let _ = stream.flush();
                std::thread::sleep(delay);
            }
            let _ = stream.shutdown(std::net::Shutdown::Write);
        }
        NetFault::GarbageBody => {
            let garbage: Vec<u8> = (0..64u8).map(|i| 0xF8 | (i & 0x07)).collect();
            let head = format!(
                "POST /ingest HTTP/1.1\r\nHost: vqlens\r\nContent-Length: {}\r\n\r\n",
                garbage.len()
            );
            stream.write_all(head.as_bytes())?;
            stream.write_all(&garbage)?;
            stream.shutdown(std::net::Shutdown::Write)?;
        }
        NetFault::MidStreamDisconnect => {
            stream.write_all(head.as_bytes())?;
            stream.write_all(&payload.as_bytes()[..payload.len() / 2])?;
            drop(stream);
            return Ok(None);
        }
        NetFault::KillServerAfterN { .. } => {
            stream.write_all(head.as_bytes())?;
            stream.write_all(payload.as_bytes())?;
            stream.shutdown(std::net::Shutdown::Write)?;
        }
    }
    let mut response = String::new();
    let _ = stream.read_to_string(&mut response);
    Ok(Some(response))
}

/// The original trace with every corrupted or dropped line removed: the
/// clean subset a lenient ingest of the damaged trace must be equivalent
/// to.
pub fn clean_subset(csv: &str, summary: &FaultSummary) -> String {
    let bad: std::collections::HashSet<usize> = summary
        .corrupted_lines
        .iter()
        .chain(summary.dropped_lines.iter())
        .copied()
        .collect();
    let mut out = String::with_capacity(csv.len());
    for (i, line) in csv.lines().enumerate() {
        if !bad.contains(&(i + 1)) {
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;
    use vqlens_model::csv::{read_csv, read_csv_opts, ReadOptions, CSV_HEADER};

    fn fixture() -> String {
        let mut csv = format!("{CSV_HEADER}\n");
        for e in 0..4u32 {
            for s in 0..5u32 {
                csv.push_str(&format!(
                    "{e},AS{s},cdn-{s},site-{s},VoD,HTML5,Chrome,Cable,0,{},{}.5,0.0,{}\n",
                    400 + s,
                    10 + s,
                    1000 + 100 * s
                ));
            }
        }
        csv
    }

    #[test]
    fn injection_is_deterministic() {
        let csv = fixture();
        let mut varied = 0;
        for kind in FaultKind::ALL {
            let plan = FaultPlan {
                kind,
                seed: 99,
                corrupt_ratio: 0.2,
            };
            let (a, sa) = inject(&csv, &plan);
            let (b, sb) = inject(&csv, &plan);
            assert_eq!(a, b, "{kind:?} must be deterministic");
            assert_eq!(sa, sb);
            let (c, _) = inject(&csv, &FaultPlan { seed: 100, ..plan });
            if a != c {
                varied += 1;
            }
        }
        // A single kind's two seeds may coincidentally pick the same
        // targets; all of them agreeing would mean the seed is ignored.
        assert!(varied > 0, "injection must depend on the seed");
    }

    #[test]
    fn lenient_ingest_recovers_exactly_the_clean_subset() {
        let csv = fixture();
        for kind in FaultKind::ALL {
            for seed in [1u64, 7, 2013] {
                let plan = FaultPlan {
                    kind,
                    seed,
                    corrupt_ratio: 0.15,
                };
                let (damaged, summary) = inject(&csv, &plan);
                let (recovered, report) = read_csv_opts(
                    BufReader::new(damaged.as_bytes()),
                    &ReadOptions::lenient(1.0),
                    None,
                )
                .unwrap_or_else(|e| panic!("{kind:?} seed {seed}: lenient ingest failed: {e}"));
                assert_eq!(
                    report.bad_lines,
                    summary.expected_quarantined(),
                    "{kind:?} seed {seed}: report must count the damage exactly"
                );
                if kind.is_lossless() {
                    assert!(report.is_clean(), "{kind:?} must quarantine nothing");
                }
                let clean = read_csv(BufReader::new(clean_subset(&csv, &summary).as_bytes()))
                    .unwrap_or_else(|e| panic!("{kind:?} seed {seed}: clean subset: {e}"));
                assert_eq!(
                    recovered.num_sessions(),
                    clean.num_sessions(),
                    "{kind:?} seed {seed}: all uncorrupted sessions recovered"
                );
                assert_eq!(recovered.num_epochs(), clean.num_epochs());
                for (x, y) in recovered.iter_sessions().zip(clean.iter_sessions()) {
                    assert_eq!(x.epoch, y.epoch);
                    assert_eq!(x.quality, y.quality);
                }
            }
        }
    }

    #[test]
    fn per_line_damage_respects_the_ratio() {
        let csv = fixture();
        let plan = FaultPlan {
            kind: FaultKind::NanNumeric,
            seed: 5,
            corrupt_ratio: 0.2,
        };
        let (_, summary) = inject(&csv, &plan);
        // 20 data lines * 0.2 = 4 targets.
        assert_eq!(summary.corrupted_lines.len(), 4);
        // At least one line is always damaged, even at ratio 0.
        let plan = FaultPlan {
            corrupt_ratio: 0.0,
            ..plan
        };
        let (_, summary) = inject(&csv, &plan);
        assert_eq!(summary.corrupted_lines.len(), 1);
    }

    #[test]
    fn interruptions_edit_checkpoint_directories_deterministically() {
        use std::fs;
        let dir =
            std::env::temp_dir().join(format!("vqlens-faults-interrupt-{}", std::process::id()));
        let fresh = |tag: &str| {
            let d = dir.join(tag);
            let _ = fs::remove_dir_all(&d);
            fs::create_dir_all(&d).unwrap();
            fs::write(d.join("manifest.json"), b"{}").unwrap();
            for e in 0..5u32 {
                fs::write(
                    d.join(format!("epoch-{e:08}.json")),
                    format!("{{\"epoch\":{e}}}"),
                )
                .unwrap();
            }
            d
        };

        let d = fresh("kill");
        let s = interrupt_checkpoints(&d, InterruptKind::KillAfter { keep_epochs: 2 }, 1).unwrap();
        assert_eq!(s.surviving_files.len(), 2);
        assert_eq!(s.removed_files.len(), 3);
        let left: Vec<_> = fs::read_dir(&d)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with("epoch-"))
            .collect();
        assert_eq!(left.len(), 2, "later epochs deleted, manifest untouched");
        assert!(d.join("manifest.json").exists());

        let d = fresh("torn");
        let s = interrupt_checkpoints(&d, InterruptKind::TornTempFile, 7).unwrap();
        let s2 = interrupt_checkpoints(&fresh("torn2"), InterruptKind::TornTempFile, 7).unwrap();
        assert_eq!(s.damaged_files, s2.damaged_files, "seeded, deterministic");
        assert_eq!(s.surviving_files.len(), 5);
        assert!(s.damaged_files[0].ends_with(".tmp"));
        assert!(d.join(&s.damaged_files[0]).exists());

        let d = fresh("trunc");
        let s = interrupt_checkpoints(&d, InterruptKind::TruncatedCheckpoint, 3).unwrap();
        assert_eq!(s.damaged_files.len(), 1);
        assert_eq!(s.surviving_files.len(), 4);
        let damaged = fs::read(d.join(&s.damaged_files[0])).unwrap();
        assert!(serde_json::from_slice::<serde_json::Value>(&damaged).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_trace_is_a_no_op() {
        let csv = format!("{CSV_HEADER}\n");
        for kind in FaultKind::ALL {
            let (out, summary) = inject(&csv, &FaultPlan::new(kind, 3));
            assert_eq!(summary.expected_quarantined(), 0);
            assert!(summary.dropped_lines.is_empty());
            assert!(out.contains("epoch,"), "{kind:?} must keep the header");
        }
    }
}
