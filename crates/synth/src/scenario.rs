//! Scenario presets and end-to-end trace generation.
//!
//! A [`Scenario`] bundles the world, event, and arrival configurations with
//! a trace length and master seed. [`generate`] produces the full
//! [`Dataset`] plus [`GroundTruth`] serially; [`generate_epoch`] generates
//! one epoch purely (no shared state), which is what the core pipeline uses
//! to generate epochs in parallel.

use crate::arrivals::{resolve_env, ArrivalConfig, ArrivalSampler};
use crate::events::{plan_events, EventPlanConfig, GroundTruth};
use crate::world::ConnType;
use crate::world::{World, WorldConfig, BROWSER_NAMES, PLAYER_NAMES, VOD_LIVE_NAMES};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use vqlens_delivery::player::simulate_session;
use vqlens_model::attr::AttrKey;
use vqlens_model::dataset::{Dataset, DatasetMeta, EpochData};
use vqlens_model::epoch::{EpochId, TWO_WEEKS};

/// A complete generation scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Scenario name (recorded in the dataset metadata).
    pub name: String,
    /// World-generation knobs.
    pub world: WorldConfig,
    /// Number of planted events.
    pub n_events: usize,
    /// Arrival-process knobs.
    pub arrivals: ArrivalConfig,
    /// Trace length in hourly epochs.
    pub epochs: u32,
    /// Master seed; every randomized stage derives from it.
    pub seed: u64,
}

impl Scenario {
    /// A tiny scenario for unit/integration tests: seconds to generate.
    pub fn smoke() -> Scenario {
        Scenario {
            name: "smoke".into(),
            world: WorldConfig {
                n_sites: 40,
                n_cdns: 6,
                n_asns: 80,
                seed: 0x5eed_0001,
            },
            n_events: 24,
            arrivals: ArrivalConfig {
                sessions_per_epoch: 2_000.0,
                diurnal_amplitude: 0.35,
                background_degrade_prob: 0.06,
                weekly_amplitude: 0.0,
            },
            epochs: 24,
            seed: 0x5eed_cafe,
        }
    }

    /// The default paper-shaped scenario: two weeks of hourly epochs, the
    /// paper's entity counts, ~12 K sessions/hour (a 1:75 scale-down of the
    /// paper's ~900 K/hour; see DESIGN.md §2 for the scaling argument).
    pub fn paper_default() -> Scenario {
        Scenario {
            name: "paper-default".into(),
            world: WorldConfig::default(),
            n_events: 260,
            arrivals: ArrivalConfig::default(),
            epochs: TWO_WEEKS,
            seed: 0x5eed_0000,
        }
    }

    /// A larger run for benchmarking throughput (one week, 3× the traffic).
    pub fn full() -> Scenario {
        Scenario {
            name: "full".into(),
            world: WorldConfig {
                n_asns: 4_000,
                ..WorldConfig::default()
            },
            n_events: 400,
            arrivals: ArrivalConfig {
                sessions_per_epoch: 36_000.0,
                ..ArrivalConfig::default()
            },
            epochs: TWO_WEEKS,
            seed: 0x5eed_0000,
        }
    }

    /// The per-hour session floor the paper's 1000-session significance
    /// threshold scales to for this scenario.
    pub fn scaled_min_sessions(&self) -> u64 {
        vqlens_cluster_min_sessions(self.arrivals.sessions_per_epoch)
    }
}

/// The paper's `min_sessions = 1000` at ~900 K sessions/hour, scaled.
fn vqlens_cluster_min_sessions(sessions_per_epoch: f64) -> u64 {
    ((sessions_per_epoch * (1000.0 / 900_000.0)).round() as u64).max(10)
}

/// Everything a generation run produces.
#[derive(Debug, Clone)]
pub struct SynthOutput {
    /// The generated trace.
    pub dataset: Dataset,
    /// The world it was drawn from.
    pub world: World,
    /// The planted ground truth.
    pub ground_truth: GroundTruth,
}

/// Build the world, the event plan, and an empty pre-interned dataset.
///
/// Interning order is fixed so that dictionary ids equal world indexes —
/// the invariant that lets [`crate::events::EventScope::expected_cluster`]
/// name clusters directly.
pub fn prepare(scenario: &Scenario) -> (World, GroundTruth, Dataset) {
    let world = World::generate(&scenario.world);
    let ground_truth = plan_events(
        &world,
        &EventPlanConfig {
            n_events: scenario.n_events,
            seed: scenario.seed ^ 0x5eed_0002,
            epochs: scenario.epochs,
        },
    );
    let mut dataset = Dataset::new(
        scenario.epochs,
        DatasetMeta {
            name: scenario.name.clone(),
            description: format!(
                "synthetic trace: {} sites, {} CDNs, {} ASNs, {} events, ~{} sessions/epoch",
                world.sites.len(),
                world.cdns.len(),
                world.asns.len(),
                ground_truth.len(),
                scenario.arrivals.sessions_per_epoch as u64,
            ),
            seed: Some(scenario.seed),
        },
    );
    for asn in &world.asns {
        dataset.intern(AttrKey::Asn, &asn.name);
    }
    for cdn in &world.cdns {
        dataset.intern(AttrKey::Cdn, &cdn.name);
    }
    for site in &world.sites {
        dataset.intern(AttrKey::Site, &site.name);
    }
    for name in VOD_LIVE_NAMES {
        dataset.intern(AttrKey::VodOrLive, name);
    }
    for name in PLAYER_NAMES {
        dataset.intern(AttrKey::PlayerType, name);
    }
    for name in BROWSER_NAMES {
        dataset.intern(AttrKey::Browser, name);
    }
    for name in ConnType::NAMES {
        dataset.intern(AttrKey::ConnType, name);
    }
    (world, ground_truth, dataset)
}

/// Generate the sessions of one epoch. Pure: independent epochs can run on
/// independent threads.
pub fn generate_epoch(
    world: &World,
    sampler: &ArrivalSampler,
    ground_truth: &GroundTruth,
    arrivals: &ArrivalConfig,
    epoch: EpochId,
    master_seed: u64,
) -> EpochData {
    let mut rng = SmallRng::seed_from_u64(
        master_seed ^ (u64::from(epoch.0) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
    );
    let mut active: Vec<_> = ground_truth
        .events
        .iter()
        .filter(|e| e.schedule.active_at(epoch))
        .collect();
    // Canonical application order: overlapping-event composition must be
    // independent of insertion order in the scenario spec (float add/mul
    // are commutative but not associative — see `EventEffect::canonical_key`).
    active.sort_by_key(|e| e.effect.canonical_key());
    let migrations: Vec<_> = ground_truth
        .migrations
        .iter()
        .filter(|m| m.shifted_fraction(epoch) > 0.0)
        .collect();
    let churn: Vec<_> = ground_truth
        .churn
        .iter()
        .filter(|c| c.active_at(epoch))
        .collect();
    let count = arrivals.sample_count(epoch, &mut rng);
    let mut data = EpochData::default();
    data.attrs.reserve(count);
    data.quality.reserve(count);
    for _ in 0..count {
        let mut draw = sampler.draw(world, &mut rng);
        // CDN migrations redirect in-scope draws before quality resolves:
        // the session's cluster membership shifts, not its intent.
        for m in &migrations {
            if draw.attrs.get(AttrKey::Site) == m.site
                && draw.attrs.get(AttrKey::Cdn) == m.from_cdn
                && rng.gen::<f64>() < m.shifted_fraction(epoch)
            {
                let mut values = draw.attrs.values;
                values[AttrKey::Cdn.index()] = m.to_cdn;
                draw.attrs = vqlens_model::attr::SessionAttrs::new(values);
            }
        }
        // Churn feedback: a slice of the in-scope audience never shows up.
        if churn
            .iter()
            .any(|c| c.scope.matches(&draw.attrs) && rng.gen::<f64>() < c.drop_frac)
        {
            continue;
        }
        let env = resolve_env(world, &draw, &active, arrivals, &mut rng);
        let quality = simulate_session(&env, &mut rng);
        data.push(draw.attrs, quality);
    }
    // Flash-crowd surges: extra live viewers funneled onto one site, on
    // top of the organic arrivals (which already feel the paired overload
    // event via `active`).
    for crowd in &ground_truth.flash_crowds {
        if !crowd.active_at(epoch) {
            continue;
        }
        let extra = ((count as f64) * crowd.extra_traffic).round() as usize;
        for _ in 0..extra {
            let draw = sampler.draw_for_live_site(world, crowd.site, &mut rng);
            let env = resolve_env(world, &draw, &active, arrivals, &mut rng);
            let quality = simulate_session(&env, &mut rng);
            data.push(draw.attrs, quality);
        }
    }
    data
}

/// Generate the full trace serially with a *custom* planted-event set
/// (replacing the scenario's own event plan) — the hook examples use to
/// stage a single known incident and watch the pipeline find it.
pub fn generate_with_events(scenario: &Scenario, ground_truth: GroundTruth) -> SynthOutput {
    let (world, _, mut dataset) = prepare(scenario);
    let sampler = ArrivalSampler::new(&world);
    for e in 0..scenario.epochs {
        let epoch = EpochId(e);
        let data = generate_epoch(
            &world,
            &sampler,
            &ground_truth,
            &scenario.arrivals,
            epoch,
            scenario.seed,
        );
        for (attrs, quality) in data.iter() {
            dataset.push(vqlens_model::SessionRecord::new(epoch, *attrs, *quality));
        }
    }
    SynthOutput {
        dataset,
        world,
        ground_truth,
    }
}

/// Generate the full trace serially.
pub fn generate(scenario: &Scenario) -> SynthOutput {
    let (world, ground_truth, mut dataset) = prepare(scenario);
    let sampler = ArrivalSampler::new(&world);
    for e in 0..scenario.epochs {
        let epoch = EpochId(e);
        let data = generate_epoch(
            &world,
            &sampler,
            &ground_truth,
            &scenario.arrivals,
            epoch,
            scenario.seed,
        );
        for (attrs, quality) in data.iter() {
            dataset.push(vqlens_model::SessionRecord::new(epoch, *attrs, *quality));
        }
    }
    SynthOutput {
        dataset,
        world,
        ground_truth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqlens_model::metric::{Metric, Thresholds};

    #[test]
    fn smoke_scenario_generates_plausible_trace() {
        let scenario = Scenario::smoke();
        let out = generate(&scenario);
        assert_eq!(out.dataset.num_epochs(), 24);
        let n = out.dataset.num_sessions();
        assert!(
            (30_000..70_000).contains(&n),
            "expected ~48K sessions, got {n}"
        );

        // Global problem ratios should be non-trivial but not absurd.
        let t = Thresholds::default();
        let mut problems = [0usize; 4];
        let mut total = 0usize;
        for (_, data) in out.dataset.iter_epochs() {
            for (_, q) in data.iter() {
                total += 1;
                for m in Metric::ALL {
                    if t.is_problem(q, m) {
                        problems[m.index()] += 1;
                    }
                }
            }
        }
        for m in Metric::ALL {
            let ratio = problems[m.index()] as f64 / total as f64;
            assert!(
                (0.005..0.6).contains(&ratio),
                "{m}: implausible global problem ratio {ratio}"
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let scenario = Scenario::smoke();
        let a = generate(&scenario);
        let b = generate(&scenario);
        assert_eq!(a.dataset.num_sessions(), b.dataset.num_sessions());
        let qa: Vec<_> = a.dataset.iter_sessions().take(500).collect();
        let qb: Vec<_> = b.dataset.iter_sessions().take(500).collect();
        assert_eq!(qa, qb);
    }

    #[test]
    fn epochs_generate_independently() {
        let scenario = Scenario::smoke();
        let (world, gt, _) = prepare(&scenario);
        let sampler = ArrivalSampler::new(&world);
        let once = generate_epoch(
            &world,
            &sampler,
            &gt,
            &scenario.arrivals,
            EpochId(5),
            scenario.seed,
        );
        let again = generate_epoch(
            &world,
            &sampler,
            &gt,
            &scenario.arrivals,
            EpochId(5),
            scenario.seed,
        );
        assert_eq!(once.len(), again.len());
        assert_eq!(once.attrs, again.attrs);
        // And it matches the serial path.
        let full = generate(&scenario);
        assert_eq!(full.dataset.epoch(EpochId(5)).len(), once.len());
        assert_eq!(full.dataset.epoch(EpochId(5)).attrs, once.attrs);
    }

    #[test]
    fn dictionaries_match_world_indexes() {
        let scenario = Scenario::smoke();
        let out = generate(&scenario);
        for (i, asn) in out.world.asns.iter().enumerate() {
            assert_eq!(out.dataset.dict(AttrKey::Asn).id(&asn.name), Some(i as u32));
        }
        for (i, site) in out.world.sites.iter().enumerate() {
            assert_eq!(
                out.dataset.dict(AttrKey::Site).id(&site.name),
                Some(i as u32)
            );
        }
        assert_eq!(out.dataset.dict(AttrKey::VodOrLive).name(1), Some("Live"));
    }

    #[test]
    fn scaled_min_sessions_tracks_traffic() {
        assert_eq!(Scenario::paper_default().scaled_min_sessions(), 13);
        let mut s = Scenario::paper_default();
        s.arrivals.sessions_per_epoch = 900_000.0;
        assert_eq!(s.scaled_min_sessions(), 1000);
    }
}

#[cfg(test)]
mod order_independence_tests {
    use super::*;
    use crate::events::{EventEffect, EventSchedule, EventScope, PlantedEvent};
    use proptest::prelude::*;
    use vqlens_model::metric::Metric;

    /// Four overlapping events (one matches everything) with distinct
    /// effects — the worst case for order-dependent float composition.
    fn overlapping_events() -> Vec<PlantedEvent> {
        let mk = |id: u32, scope: EventScope, effect: EventEffect| PlantedEvent {
            id,
            name: format!("ev-{id}"),
            scope,
            effect,
            schedule: EventSchedule::Persistent,
            expected_metrics: vec![Metric::BufRatio],
        };
        vec![
            mk(
                0,
                EventScope {
                    cdn: Some(0),
                    ..EventScope::default()
                },
                EventEffect::congestion(0.5),
            ),
            mk(1, EventScope::default(), EventEffect::overload(0.3)),
            mk(
                2,
                EventScope {
                    site: Some(0),
                    ..EventScope::default()
                },
                EventEffect::slow_modules(800.0),
            ),
            mk(
                3,
                EventScope {
                    asn: Some(0),
                    ..EventScope::default()
                },
                EventEffect::join_breakage(0.05),
            ),
        ]
    }

    fn tiny() -> Scenario {
        let mut s = Scenario::smoke();
        s.epochs = 3;
        s.arrivals.sessions_per_epoch = 400.0;
        s
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Satellite bugfix: overlapping events on the same sessions must
        /// compose to bit-identical traces regardless of their insertion
        /// order in the scenario spec.
        #[test]
        fn event_insertion_order_does_not_change_the_trace(
            perm in Just(overlapping_events().len()).prop_flat_map(|n| {
                prop::collection::vec(0..n, n).prop_filter_map("permutation", move |idx| {
                    let mut seen = vec![false; n];
                    for &i in &idx {
                        if seen[i] {
                            return None;
                        }
                        seen[i] = true;
                    }
                    Some(idx)
                })
            })
        ) {
            let scenario = tiny();
            let base = generate_with_events(
                &scenario,
                GroundTruth::from_events(overlapping_events()),
            );
            let events = overlapping_events();
            let permuted: Vec<_> = perm.iter().map(|&i| events[i].clone()).collect();
            let other = generate_with_events(&scenario, GroundTruth::from_events(permuted));
            prop_assert_eq!(base.dataset.num_sessions(), other.dataset.num_sessions());
            for e in 0..scenario.epochs {
                let a = base.dataset.epoch(EpochId(e));
                let b = other.dataset.epoch(EpochId(e));
                prop_assert_eq!(&a.attrs, &b.attrs, "attrs diverge in epoch {}", e);
                prop_assert_eq!(&a.quality, &b.quality, "quality diverges in epoch {}", e);
            }
        }
    }
}

#[cfg(test)]
mod migration_churn_tests {
    use super::*;
    use crate::events::{CdnMigration, ChurnRule, EventScope, GroundTruth};
    use vqlens_model::attr::AttrKey as AK;

    /// Pick a (site, cdn) pair with enough organic traffic to measure.
    fn busiest_pair(dataset: &vqlens_model::Dataset) -> (u32, u32) {
        let mut counts = std::collections::HashMap::new();
        for (attrs, _) in dataset.epoch(EpochId(0)).iter() {
            *counts
                .entry((attrs.get(AK::Site), attrs.get(AK::Cdn)))
                .or_insert(0usize) += 1;
        }
        counts
            .into_iter()
            .max_by_key(|&(_, n)| n)
            .map(|(pair, _)| pair)
            .expect("non-empty epoch")
    }

    #[test]
    fn migration_shifts_cluster_membership_mid_trace() {
        let mut scenario = Scenario::smoke();
        scenario.epochs = 12;
        let control = generate_with_events(&scenario, GroundTruth::from_events(vec![]));
        let (site, from_cdn) = busiest_pair(&control.dataset);
        let to_cdn = (from_cdn + 1) % scenario.world.n_cdns as u32;

        let mut gt = GroundTruth::from_events(vec![]);
        gt.migrations.push(CdnMigration {
            site,
            from_cdn,
            to_cdn,
            start: 6,
            ramp_h: 3,
        });
        let out = generate_with_events(&scenario, gt);

        let share_on = |d: &vqlens_model::Dataset, e: u32, cdn: u32| {
            let data = d.epoch(EpochId(e));
            let (on_site, on_pair) = data.iter().fold((0usize, 0usize), |(s, p), (a, _)| {
                if a.get(AK::Site) == site {
                    (s + 1, p + usize::from(a.get(AK::Cdn) == cdn))
                } else {
                    (s, p)
                }
            });
            on_pair as f64 / on_site.max(1) as f64
        };
        // Before the ramp the trace is untouched; once the ramp completes,
        // the site's from-CDN share collapses onto the destination CDN.
        let before_from = share_on(&out.dataset, 2, from_cdn);
        let control_from = share_on(&control.dataset, 2, from_cdn);
        assert_eq!(before_from, control_from, "pre-migration epochs untouched");
        let after_from = share_on(&out.dataset, 10, from_cdn);
        let after_to = share_on(&out.dataset, 10, to_cdn);
        assert!(
            after_from < control_from * 0.2,
            "from-CDN share should collapse: {after_from} vs control {control_from}"
        );
        assert!(after_to > 0.5, "shifted traffic lands on the destination");
        // Session volume is conserved — migration re-routes, never drops.
        assert_eq!(out.dataset.num_sessions(), control.dataset.num_sessions());
    }

    #[test]
    fn churn_shrinks_the_in_scope_population_after_onset() {
        let mut scenario = Scenario::smoke();
        scenario.epochs = 8;
        let control = generate_with_events(&scenario, GroundTruth::from_events(vec![]));
        let (site, _) = busiest_pair(&control.dataset);

        let mut gt = GroundTruth::from_events(vec![]);
        gt.churn.push(ChurnRule {
            scope: EventScope {
                site: Some(site),
                ..EventScope::default()
            },
            onset: 4,
            drop_frac: 0.6,
        });
        let out = generate_with_events(&scenario, gt);

        let on_site = |d: &vqlens_model::Dataset, e: u32| {
            d.epoch(EpochId(e))
                .iter()
                .filter(|(a, _)| a.get(AK::Site) == site)
                .count() as f64
        };
        // Pre-onset epochs are bit-identical to the control.
        for e in 0..4 {
            assert_eq!(
                out.dataset.epoch(EpochId(e)).attrs,
                control.dataset.epoch(EpochId(e)).attrs,
                "epoch {e} must be untouched before onset"
            );
        }
        // Post-onset the in-scope population drops by roughly drop_frac.
        for e in 4..8 {
            let kept = on_site(&out.dataset, e) / on_site(&control.dataset, e);
            assert!(
                (0.2..0.6).contains(&kept),
                "epoch {e}: kept fraction {kept}, expected ~0.4"
            );
        }
    }
}

#[cfg(test)]
mod flash_crowd_tests {
    use super::*;
    use crate::events::{FlashCrowd, GroundTruth};
    use vqlens_model::attr::AttrKey as AK;

    #[test]
    fn surge_adds_live_sessions_on_the_site() {
        let mut scenario = Scenario::smoke();
        scenario.epochs = 6;
        let mut gt = GroundTruth::from_events(vec![]);
        gt.flash_crowds.push(FlashCrowd {
            site: 5,
            start: 2,
            len_h: 2,
            extra_traffic: 0.5,
        });
        let out = generate_with_events(&scenario, gt);
        // Control: identical scenario and seed, no crowd.
        let control = generate_with_events(&scenario, GroundTruth::from_events(vec![]));

        let site_share = |d: &vqlens_model::Dataset, e: u32| {
            let data = d.epoch(EpochId(e));
            let on_site = data.iter().filter(|(a, _)| a.get(AK::Site) == 5).count();
            (on_site as f64 / data.len() as f64, data.len())
        };
        let (quiet_share, _) = site_share(&out.dataset, 0);
        let (surge_share, surge_n) = site_share(&out.dataset, 2);
        let (_, organic_n) = site_share(&control.dataset, 2);
        assert!(
            surge_share > quiet_share + 0.2,
            "surge epoch share {surge_share} vs quiet {quiet_share}"
        );
        assert!(
            surge_n as f64 > organic_n as f64 * 1.4,
            "arrivals should jump vs the organic control: {surge_n} vs {organic_n}"
        );
        // The surge sessions are live.
        let live_on_site = out
            .dataset
            .epoch(EpochId(2))
            .iter()
            .filter(|(a, _)| a.get(AK::Site) == 5 && a.get(AK::VodOrLive) == 1)
            .count();
        assert!(live_on_site > 0);
    }
}
