//! VQF edge-case tests: the shapes a real fleet produces that a format
//! bug would mangle first — empty and single-epoch traces, dictionaries
//! wide enough to cross the id-width breakpoints, torn and bit-flipped
//! files — plus a property test that the mmap and pread backends decode
//! identical datasets for arbitrary session populations.

use proptest::prelude::*;
use std::path::PathBuf;
use vqlens_format::layout::{self, HEADER_LEN};
use vqlens_format::{read_vqf, sniff_is_vqf, write_vqf, write_vqf_to, Backend, VqfError, VqfFile};
use vqlens_model::attr::{AttrKey, SessionAttrs};
use vqlens_model::dataset::{Dataset, DatasetMeta};
use vqlens_model::epoch::EpochId;
use vqlens_model::metric::QualityMeasurement;
use vqlens_model::session::SessionRecord;
use vqlens_resilience::fingerprint_dataset;

fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "vqlens-format-test-{}-{name}.vqf",
        std::process::id()
    ))
}

/// A dataset with `epochs` epochs of `per_epoch` sessions over small
/// dictionaries, deterministically varied.
fn small_dataset(epochs: u32, per_epoch: u32) -> Dataset {
    let mut ds = Dataset::new(
        epochs,
        DatasetMeta {
            name: "edge".into(),
            description: "edge-case fixture".into(),
            seed: Some(7),
        },
    );
    for key in AttrKey::ALL {
        ds.intern(key, "a");
        ds.intern(key, "b");
    }
    for e in 0..epochs {
        for i in 0..per_epoch {
            let attrs = SessionAttrs::new([i % 2, (i + e) % 2, 0, i % 2, 0, 0, 0]);
            let q = if i % 7 == 0 {
                QualityMeasurement::failed()
            } else {
                QualityMeasurement::joined(100 + i, 120.5, 1.25 * i as f32, 2345.0)
            };
            ds.push(SessionRecord::new(EpochId(e), attrs, q));
        }
    }
    ds
}

#[test]
fn empty_trace_roundtrips() {
    for (name, epochs) in [("zero-epochs", 0u32), ("empty-epochs", 3)] {
        let ds = Dataset::new(epochs, DatasetMeta::default());
        let path = scratch(name);
        write_vqf(&ds, &path).expect("write empty");
        assert!(sniff_is_vqf(&path));
        let back = read_vqf(&path).expect("read empty");
        assert_eq!(back.num_epochs(), epochs);
        assert_eq!(back.num_sessions(), 0);
        assert_eq!(fingerprint_dataset(&back), fingerprint_dataset(&ds));
        std::fs::remove_file(&path).unwrap();
    }
}

#[test]
fn single_epoch_trace_roundtrips() {
    let ds = small_dataset(1, 37);
    let path = scratch("single-epoch");
    write_vqf(&ds, &path).expect("write");
    let back = read_vqf(&path).expect("read");
    assert_eq!(back.num_epochs(), 1);
    assert_eq!(back.num_sessions(), 37);
    assert_eq!(back.meta, ds.meta, "metadata survives the round trip");
    assert_eq!(fingerprint_dataset(&back), fingerprint_dataset(&ds));
    std::fs::remove_file(&path).unwrap();
}

/// A dictionary with more values than one byte can index must switch the
/// column to 2-byte ids — and still round-trip every session exactly. 300
/// ASN values crosses both the 127 (i7) and 256 (u8) breakpoints.
#[test]
fn wide_dictionaries_widen_their_id_columns() {
    let mut ds = Dataset::new(1, DatasetMeta::default());
    for key in AttrKey::ALL {
        ds.intern(key, "only");
    }
    const WIDE: u32 = 300;
    for i in 0..WIDE {
        let id = ds.intern(AttrKey::Asn, &format!("AS{i:05}"));
        ds.push(SessionRecord::new(
            EpochId(0),
            SessionAttrs::new([id, 0, 0, 0, 0, 0, 0]),
            QualityMeasurement::joined(50 + i, 60.0, 0.5, 1800.0),
        ));
    }
    assert_eq!(ds.dict(AttrKey::Asn).len(), WIDE as usize + 1);
    assert_eq!(layout::id_width(ds.dict(AttrKey::Asn).len()), 2);

    let path = scratch("wide-dict");
    write_vqf(&ds, &path).expect("write");
    let back = read_vqf(&path).expect("read");
    assert_eq!(fingerprint_dataset(&back), fingerprint_dataset(&ds));
    for i in (0..WIDE).step_by(41) {
        assert_eq!(
            back.value_name(AttrKey::Asn, i + 1),
            Some(format!("AS{i:05}").as_str()),
            "interned names keep their ids"
        );
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn truncated_footer_is_rejected() {
    let ds = small_dataset(2, 20);
    let mut bytes = Vec::new();
    write_vqf_to(&ds, &mut bytes).expect("encode");
    let path = scratch("truncated-footer");
    // Cut inside the footer/trailer region: from just past the last chunk
    // to one byte short of complete, every prefix must be rejected.
    let chunks_end = {
        let full = scratch("truncated-footer-full");
        std::fs::write(&full, &bytes).unwrap();
        let file = VqfFile::open(&full).expect("intact file opens");
        let last = file.footer().chunks.last().expect("has chunks");
        let end = last.offset + last.len;
        std::fs::remove_file(&full).unwrap();
        end as usize
    };
    for cut in [chunks_end + 1, chunks_end + 7, bytes.len() - 1] {
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let err = read_vqf(&path).expect_err("torn footer must not parse");
        assert!(
            matches!(
                err,
                VqfError::Truncated { .. } | VqfError::ChecksumMismatch { .. }
            ),
            "cut at {cut}: unexpected error {err}"
        );
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn flipped_checksum_byte_is_rejected() {
    let ds = small_dataset(2, 20);
    let mut bytes = Vec::new();
    write_vqf_to(&ds, &mut bytes).expect("encode");
    let path = scratch("flipped-checksum");
    // The header's own checksum field, a dictionary section's stored
    // checksum (inside the footer), and the trailer's footer checksum.
    let header_checksum = HEADER_LEN as usize - 8;
    let trailer_checksum = bytes.len() - 12;
    for pos in [header_checksum, trailer_checksum] {
        let mut damaged = bytes.clone();
        damaged[pos] ^= 0x40;
        std::fs::write(&path, &damaged).unwrap();
        let err = read_vqf(&path).expect_err("flipped checksum must not parse");
        assert!(
            matches!(err, VqfError::ChecksumMismatch { .. }),
            "pos {pos}: unexpected error {err}"
        );
    }
    // Flipping payload bytes (not the checksum itself) must also trip the
    // covering checksum: probe a spread of body positions.
    for pos in (HEADER_LEN as usize..bytes.len()).step_by(bytes.len() / 13) {
        let mut damaged = bytes.clone();
        damaged[pos] ^= 0x01;
        std::fs::write(&path, &damaged).unwrap();
        assert!(
            read_vqf(&path).is_err(),
            "flip at {pos} of {} parsed anyway",
            bytes.len()
        );
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn mmap_and_pread_agree_on_a_fixture() {
    let ds = small_dataset(3, 50);
    let path = scratch("backend-fixture");
    write_vqf(&ds, &path).expect("write");
    let pread = VqfFile::open_with(&path, Backend::Pread)
        .and_then(|f| f.read_dataset())
        .expect("pread read");
    assert_eq!(fingerprint_dataset(&pread), fingerprint_dataset(&ds));
    if vqlens_format::mmap::MMAP_SUPPORTED {
        let file = VqfFile::open_with(&path, Backend::Mmap).expect("mmap open");
        assert!(file.is_mmap());
        let mapped = file.read_dataset().expect("mmap read");
        assert_eq!(fingerprint_dataset(&mapped), fingerprint_dataset(&pread));
    }
    std::fs::remove_file(&path).unwrap();
}

proptest! {
    /// Backend equivalence over arbitrary session populations: whatever
    /// sessions land in whatever epochs, the mmap path and the pread path
    /// decode bit-identical datasets (and both equal the original).
    #[test]
    fn mmap_and_pread_decode_identically(
        sessions in prop::collection::vec(
            (0u32..4, prop::array::uniform7(0u32..2), any::<bool>(), 0u32..10_000,
             0f32..1e4, 0f32..1e3, 0f32..1e4),
            0..200,
        ),
        wide in 0usize..40,
    ) {
        let mut ds = Dataset::new(4, DatasetMeta::default());
        for key in AttrKey::ALL {
            for name in ["x", "y", "z"] {
                ds.intern(key, name);
            }
        }
        // A tail of extra ASN values so some runs cross the 1-byte width.
        for i in 0..wide * 8 {
            ds.intern(AttrKey::Asn, &format!("pad{i}"));
        }
        for (epoch, vals, failed, join_ms, play, buf, kbps) in sessions {
            let q = if failed {
                QualityMeasurement::failed()
            } else {
                QualityMeasurement::joined(join_ms, play, buf, kbps)
            };
            ds.push(SessionRecord::new(EpochId(epoch), SessionAttrs::new(vals), q));
        }
        let path = scratch(&format!("prop-{:x}", fingerprint_dataset(&ds)));
        write_vqf(&ds, &path).expect("write");
        let pread = VqfFile::open_with(&path, Backend::Pread)
            .and_then(|f| f.read_dataset())
            .expect("pread read");
        prop_assert_eq!(fingerprint_dataset(&pread), fingerprint_dataset(&ds));
        if vqlens_format::mmap::MMAP_SUPPORTED {
            let mapped = VqfFile::open_with(&path, Backend::Mmap)
                .and_then(|f| f.read_dataset())
                .expect("mmap read");
            prop_assert_eq!(fingerprint_dataset(&mapped), fingerprint_dataset(&ds));
        }
        std::fs::remove_file(&path).unwrap();
    }
}
