//! Validated VQF reading: magic sniffing, footer-driven section access,
//! and decoding epoch chunks into a [`Dataset`] straight from column
//! slices.
//!
//! Two byte-access backends sit behind one API: a zero-copy memory map
//! ([`crate::mmap`], the default where supported) and a safe `pread`
//! path (`std::os::unix::fs::FileExt::read_at`) used as the fallback and
//! for differential testing. Every section is checksum-verified before a
//! single field of it is interpreted, so a corrupted or truncated file is
//! rejected with a diagnostic — never misparsed into a plausible dataset.

use crate::layout::{
    self, decode_trailer, validate_header, Cursor, Footer, SectionEntry, DICT_COUNT, HEADER_LEN,
    MAGIC, TRAILER_LEN,
};
use crate::mmap::Mmap;
use crate::VqfError;
use std::borrow::Cow;
use std::fs::File;
use std::io::Read;
use std::path::Path;
use vqlens_model::attr::{max_value, AttrKey, SessionAttrs};
use vqlens_model::dataset::{Dataset, EpochData};
use vqlens_model::epoch::EpochId;
use vqlens_model::metric::QualityMeasurement;
use vqlens_obs as obs;

/// How a [`VqfFile`] accesses the underlying bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Memory-map when the platform supports it, else pread. The default.
    #[default]
    Auto,
    /// Require the zero-copy memory map; open fails where unsupported.
    Mmap,
    /// Positioned reads through `FileExt::read_at` — no `unsafe` anywhere
    /// on this path.
    Pread,
}

/// The resolved byte source.
enum Source {
    Map(Mmap),
    Pread { file: File, len: u64 },
}

impl Source {
    fn len(&self) -> u64 {
        match self {
            Source::Map(m) => m.len() as u64,
            Source::Pread { len, .. } => *len,
        }
    }

    /// The bytes at `[offset, offset + len)`: borrowed from the map
    /// (zero-copy) or read into an owned buffer (pread).
    fn bytes(&self, offset: u64, len: u64) -> Result<Cow<'_, [u8]>, VqfError> {
        let end = offset.checked_add(len).ok_or_else(|| VqfError::Corrupt {
            detail: "section range overflows".to_owned(),
        })?;
        if end > self.len() {
            return Err(VqfError::Truncated {
                detail: format!(
                    "section [{offset}, {end}) extends past the {}-byte file",
                    self.len()
                ),
            });
        }
        match self {
            Source::Map(m) => Ok(Cow::Borrowed(&m[offset as usize..end as usize])),
            Source::Pread { file, .. } => {
                use std::os::unix::fs::FileExt;
                let mut buf = vec![0u8; len as usize];
                file.read_exact_at(&mut buf, offset).map_err(|e| {
                    if e.kind() == std::io::ErrorKind::UnexpectedEof {
                        VqfError::Truncated {
                            detail: format!("file shrank under a positioned read at {offset}"),
                        }
                    } else {
                        VqfError::Io(e)
                    }
                })?;
                Ok(Cow::Owned(buf))
            }
        }
    }
}

/// Cheap magic sniff: does this file start with the VQF leading magic?
///
/// Distinguishes VQF from CSV (or anything else) without touching more
/// than four bytes; a short or unreadable file is simply "not VQF".
pub fn sniff_is_vqf(path: &Path) -> bool {
    let mut magic = [0u8; 4];
    match File::open(path).and_then(|mut f| f.read_exact(&mut magic)) {
        Ok(()) => magic == MAGIC,
        Err(_) => false,
    }
}

/// An opened, header/footer-validated VQF file.
///
/// Opening validates the header, trailer, and footer (identity, bounds,
/// checksums); section payloads are verified lazily, each against its
/// footer checksum, when first decoded.
pub struct VqfFile {
    source: Source,
    footer: Footer,
    used_mmap: bool,
}

impl VqfFile {
    /// Open with the default ([`Backend::Auto`]) byte source.
    pub fn open(path: &Path) -> Result<VqfFile, VqfError> {
        VqfFile::open_with(path, Backend::Auto)
    }

    /// Open with an explicit byte-access backend.
    pub fn open_with(path: &Path, backend: Backend) -> Result<VqfFile, VqfError> {
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        let (source, used_mmap) = match backend {
            Backend::Mmap => (Source::Map(Mmap::map(&file)?), true),
            Backend::Pread => (Source::Pread { file, len }, false),
            Backend::Auto => match Mmap::map(&file) {
                Ok(map) => (Source::Map(map), true),
                Err(_) => (Source::Pread { file, len }, false),
            },
        };
        if len < HEADER_LEN + TRAILER_LEN {
            return Err(VqfError::Truncated {
                detail: format!(
                    "{len}-byte file is shorter than header ({HEADER_LEN}) + trailer \
                     ({TRAILER_LEN})"
                ),
            });
        }
        let header = source.bytes(0, HEADER_LEN)?;
        validate_header(&header)?;
        let trailer = source.bytes(len - TRAILER_LEN, TRAILER_LEN)?;
        let (footer_len, footer_checksum) = decode_trailer(&trailer)?;
        let body_cap = len - HEADER_LEN - TRAILER_LEN;
        if footer_len > body_cap {
            return Err(VqfError::Truncated {
                detail: format!(
                    "trailer claims a {footer_len}-byte footer but only {body_cap} bytes sit \
                     between header and trailer"
                ),
            });
        }
        let footer_offset = len - TRAILER_LEN - footer_len;
        let footer_bytes = source.bytes(footer_offset, footer_len)?;
        let computed = layout::checksum(&footer_bytes);
        if computed != footer_checksum {
            return Err(VqfError::ChecksumMismatch {
                section: "footer".to_owned(),
                stored: footer_checksum,
                computed,
            });
        }
        let footer = Footer::decode(&footer_bytes, len, footer_offset)?;
        Ok(VqfFile {
            source,
            footer,
            used_mmap,
        })
    }

    /// Number of epochs the stored trace spans.
    pub fn num_epochs(&self) -> u32 {
        self.footer.num_epochs
    }

    /// Total stored session count.
    pub fn num_sessions(&self) -> u64 {
        self.footer.total_sessions
    }

    /// The dataset provenance stored in the footer.
    pub fn meta(&self) -> &vqlens_model::dataset::DatasetMeta {
        &self.footer.meta
    }

    /// The decoded footer (section index), for tooling and tests.
    pub fn footer(&self) -> &Footer {
        &self.footer
    }

    /// True when this handle reads through the memory map rather than
    /// positioned reads.
    pub fn is_mmap(&self) -> bool {
        self.used_mmap
    }

    /// Fetch and checksum-verify one section's payload.
    fn section(&self, entry: &SectionEntry, what: &str) -> Result<Cow<'_, [u8]>, VqfError> {
        let bytes = self.source.bytes(entry.offset, entry.len)?;
        let computed = layout::checksum(&bytes);
        if computed != entry.checksum {
            return Err(VqfError::ChecksumMismatch {
                section: what.to_owned(),
                stored: entry.checksum,
                computed,
            });
        }
        Ok(bytes)
    }

    /// Decode the seven dictionaries into a fresh [`Dataset`] shell
    /// spanning the stored epoch count.
    fn decode_dicts(&self) -> Result<Dataset, VqfError> {
        let mut dataset = Dataset::new(self.footer.num_epochs, self.footer.meta.clone());
        for dim in 0..DICT_COUNT {
            let entry = &self.footer.dicts[dim];
            let what = format!("dictionary {dim}");
            let bytes = self.section(entry, &what)?;
            let mut c = Cursor::new(&bytes, &what);
            let count = c.u32()?;
            if count != entry.count {
                return Err(VqfError::Corrupt {
                    detail: format!(
                        "{what}: payload count {count} disagrees with footer count {}",
                        entry.count
                    ),
                });
            }
            if u64::from(count) > u64::from(max_value(dim)) + 1 {
                return Err(VqfError::Corrupt {
                    detail: format!(
                        "{what}: {count} values exceed the dimension's packed id space \
                         ({} values)",
                        u64::from(max_value(dim)) + 1
                    ),
                });
            }
            let key = AttrKey::from_index(dim);
            for expect in 0..count {
                let name = c.short_string()?;
                if name.is_empty() {
                    return Err(VqfError::Corrupt {
                        detail: format!("{what}: empty name at id {expect}"),
                    });
                }
                let id = dataset.intern(key, &name);
                if id != expect {
                    return Err(VqfError::Corrupt {
                        detail: format!(
                            "{what}: duplicate name {name:?} (id {id} already interned, \
                             expected fresh id {expect})"
                        ),
                    });
                }
            }
            if c.remaining() != 0 {
                return Err(VqfError::Corrupt {
                    detail: format!("{what}: {} trailing bytes", c.remaining()),
                });
            }
        }
        Ok(dataset)
    }

    /// Decode one epoch chunk, keeping sessions at indices ≡ 0 mod
    /// `keep_1_in` — the same deterministic stride the memory-budget
    /// ladder's [`vqlens_resilience::sample_epoch_data`] uses, applied at
    /// the column level so skipped sessions are never materialized.
    fn decode_chunk(
        &self,
        epoch: u32,
        dict_lens: &[u32; 7],
        keep_1_in: u32,
    ) -> Result<EpochData, VqfError> {
        let entry = &self.footer.chunks[epoch as usize];
        let what = format!("epoch chunk {epoch}");
        let bytes = self.section(entry, &what)?;
        let mut c = Cursor::new(&bytes, &what);
        let n = c.u32()? as usize;
        if n != entry.count as usize {
            return Err(VqfError::Corrupt {
                detail: format!(
                    "{what}: payload count {n} disagrees with footer count {}",
                    entry.count
                ),
            });
        }

        // Column slices, located by arithmetic over the fixed widths.
        let mut attr_cols: [(&[u8], usize); 7] = [(&[], 0); 7];
        for col in attr_cols.iter_mut() {
            let width = c.u8()? as usize;
            if !matches!(width, 1 | 2 | 4) {
                return Err(VqfError::Corrupt {
                    detail: format!("{what}: id width {width} (must be 1, 2, or 4)"),
                });
            }
            *col = (c.take(n * width)?, width);
        }
        let failed_col = c.take(n)?;
        let join_col = c.take(n * 4)?;
        let play_col = c.take(n * 4)?;
        let buf_col = c.take(n * 4)?;
        let rate_col = c.take(n * 4)?;
        if c.remaining() != 0 {
            return Err(VqfError::Corrupt {
                detail: format!("{what}: {} trailing bytes", c.remaining()),
            });
        }

        let read_id = |col: &(&[u8], usize), i: usize| -> u32 {
            let (bytes, width) = *col;
            let at = i * width;
            match width {
                1 => u32::from(bytes[at]),
                2 => u32::from(u16::from_le_bytes([bytes[at], bytes[at + 1]])),
                _ => u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4")),
            }
        };
        let read_u32 = |bytes: &[u8], i: usize| -> u32 {
            u32::from_le_bytes(bytes[i * 4..i * 4 + 4].try_into().expect("4"))
        };

        let stride = keep_1_in.max(1) as usize;
        let mut data = EpochData::default();
        for i in (0..n).step_by(stride) {
            let mut values = [0u32; 7];
            for dim in 0..7 {
                let id = read_id(&attr_cols[dim], i);
                if id >= dict_lens[dim] {
                    return Err(VqfError::Corrupt {
                        detail: format!(
                            "{what}: session {i} references {} id {id} outside its \
                             {}-value dictionary",
                            AttrKey::from_index(dim),
                            dict_lens[dim]
                        ),
                    });
                }
                values[dim] = id;
            }
            let failed = match failed_col[i] {
                0 => false,
                1 => true,
                other => {
                    return Err(VqfError::Corrupt {
                        detail: format!(
                            "{what}: session {i} join_failed byte {other} (must be 0 or 1)"
                        ),
                    })
                }
            };
            let quality = QualityMeasurement {
                join_failed: failed,
                join_time_ms: read_u32(join_col, i),
                play_duration_s: f32::from_bits(read_u32(play_col, i)),
                buffering_s: f32::from_bits(read_u32(buf_col, i)),
                avg_bitrate_kbps: f32::from_bits(read_u32(rate_col, i)),
            };
            data.push(SessionAttrs::new(values), quality);
        }
        Ok(data)
    }

    /// Decode the whole file into a [`Dataset`].
    pub fn read_dataset(&self) -> Result<Dataset, VqfError> {
        self.read_dataset_sampled(1)
    }

    /// Decode the file keeping 1-in-`keep_1_in` sessions per epoch by
    /// deterministic stride (indices ≡ 0 mod k survive) — bit-identical
    /// to loading fully and then applying the memory-budget ladder's
    /// [`vqlens_resilience::sample_epoch_data`] with the same `k`, but
    /// skipped sessions are never decoded or allocated.
    pub fn read_dataset_sampled(&self, keep_1_in: u32) -> Result<Dataset, VqfError> {
        let _span = obs::global().span(obs::Stage::Format);
        let mut dataset = self.decode_dicts()?;
        let dict_lens: [u32; 7] =
            std::array::from_fn(|dim| dataset.dict(AttrKey::from_index(dim)).len() as u32);
        let mut read = 0u64;
        let mut skipped = 0u64;
        for e in 0..self.footer.num_epochs {
            let data = self.decode_chunk(e, &dict_lens, keep_1_in)?;
            read += data.len() as u64;
            skipped += u64::from(self.footer.chunks[e as usize].count) - data.len() as u64;
            if !data.is_empty() {
                dataset.set_epoch(EpochId(e), data);
            }
        }
        let rec = obs::global();
        rec.add(obs::Counter::VqfRecordsRead, read);
        // Parity with the in-memory ladder: column-level sampling reports
        // the sessions it skipped through the same counter
        // `sample_epoch_data` uses.
        rec.add(obs::Counter::SessionsSampledOut, skipped);
        Ok(dataset)
    }
}

/// Convenience: open `path` with the default backend and decode it.
pub fn read_vqf(path: &Path) -> Result<Dataset, VqfError> {
    VqfFile::open(path)?.read_dataset()
}
