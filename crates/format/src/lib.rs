//! # vqlens-format
//!
//! **VQF** — the vqlens binary columnar session-trace format — and its
//! writer/reader. CSV stays the interchange format (self-describing,
//! diffable, `vqlens convert` away); VQF is the at-rest and analysis
//! format: a 100M-session trace loads in seconds because attribute
//! values are stored as dictionary ids at their packed byte width and
//! quality metrics as fixed-width little-endian columns, partitioned per
//! epoch so the reader hands each epoch to the cube builder straight
//! from column slices.
//!
//! The normative byte-level specification lives in `docs/FORMAT.md`;
//! [`layout`] implements it. Key properties:
//!
//! * **Checksummed end to end.** Header, footer, every dictionary
//!   section, and every epoch chunk carry 64-bit FNV-1a checksums (the
//!   same function the WAL uses). A torn, truncated, or bit-flipped file
//!   is rejected with a diagnostic, never misparsed.
//! * **Streaming writes, atomic visibility.** The writer never seeks
//!   (structure lives in the footer, located via a fixed trailer at
//!   EOF), so files are written through
//!   [`vqlens_resilience::AtomicFile`]: readers only ever see a complete
//!   committed file.
//! * **Zero-copy reads.** [`reader::VqfFile`] memory-maps the file where
//!   supported ([`mmap`] — the crate's one `unsafe` module, with a
//!   documented safety argument) and falls back to a fully safe
//!   positioned-read path; both backends decode identical bytes.
//! * **Column-level sampling.** The memory-budget ladder's deterministic
//!   1-in-k session sampling is applied while decoding
//!   ([`reader::VqfFile::read_dataset_sampled`]), so an over-budget
//!   trace never materializes the sessions it is about to drop.
//!
//! **Paper map:** §2 — the session/attribute data model at the paper's
//! real scale (~300M sessions), where text parsing is the bottleneck.

#![deny(missing_docs)]

pub mod layout;
pub mod mmap;
pub mod reader;
pub mod writer;

pub use reader::{read_vqf, sniff_is_vqf, Backend, VqfFile};
pub use writer::{write_vqf, write_vqf_to};

use std::fmt;

/// Errors from writing or reading VQF files.
#[derive(Debug)]
pub enum VqfError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The leading magic is absent: this is not a VQF file.
    NotVqf {
        /// The four bytes found where the magic should be.
        found: [u8; 4],
    },
    /// The file (or its footer encoding) declares a version this reader
    /// does not implement.
    UnsupportedVersion {
        /// The declared version.
        found: u8,
    },
    /// The file ends before a required structure is complete.
    Truncated {
        /// What was being read and how it fell short.
        detail: String,
    },
    /// A checksummed region does not match its stored checksum.
    ChecksumMismatch {
        /// Which region ("header", "footer", "epoch chunk 3", ...).
        section: String,
        /// The checksum stored in the file.
        stored: u64,
        /// The checksum computed over the bytes actually present.
        computed: u64,
    },
    /// Structurally invalid content behind a valid checksum (hand-edited
    /// or written by a buggy producer).
    Corrupt {
        /// What is wrong.
        detail: String,
    },
    /// The in-memory dataset cannot be represented (write side).
    Unencodable {
        /// What cannot be encoded.
        detail: String,
    },
}

impl fmt::Display for VqfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VqfError::Io(e) => write!(f, "I/O error: {e}"),
            VqfError::NotVqf { found } => write!(
                f,
                "not a VQF file: leading bytes {found:02x?} (expected \"VQF1\")"
            ),
            VqfError::UnsupportedVersion { found } => {
                write!(f, "unsupported VQF version {found} (this reader speaks 1)")
            }
            VqfError::Truncated { detail } => write!(f, "truncated VQF file: {detail}"),
            VqfError::ChecksumMismatch {
                section,
                stored,
                computed,
            } => write!(
                f,
                "checksum mismatch in {section}: stored {stored:#018x}, computed {computed:#018x}"
            ),
            VqfError::Corrupt { detail } => write!(f, "corrupt VQF file: {detail}"),
            VqfError::Unencodable { detail } => write!(f, "cannot encode as VQF: {detail}"),
        }
    }
}

impl std::error::Error for VqfError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VqfError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for VqfError {
    fn from(e: std::io::Error) -> Self {
        VqfError::Io(e)
    }
}
