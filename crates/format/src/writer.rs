//! Writing a [`Dataset`] out as a VQF file.
//!
//! The writer streams: header, seven dictionary sections, one column
//! chunk per epoch, footer, trailer — no seeking, so it composes with
//! [`vqlens_resilience::AtomicFile`]'s write-temp-then-rename discipline
//! (a reader only ever observes a complete committed file, never a torn
//! one; torn *copies* are caught by the trailer and checksums instead).

use crate::layout::{
    self, encode_header, encode_trailer, id_width, Footer, SectionEntry, DICT_COUNT, HEADER_LEN,
};
use crate::VqfError;
use std::io::{self, Write};
use std::path::Path;
use vqlens_model::attr::AttrKey;
use vqlens_model::dataset::Dataset;
use vqlens_model::epoch::EpochId;
use vqlens_obs as obs;
use vqlens_resilience::{retry_io, AtomicFile, RetryPolicy};

/// Write `dataset` to `path` atomically: the destination either keeps its
/// previous content or becomes the complete new VQF file.
///
/// The whole write-temp → sync → rename sequence runs under
/// [`retry_io`]'s `durable_writes` policy, so transient failures
/// (`EINTR`, `ENOSPC` while space is being reclaimed) are re-attempted
/// from a fresh temporary and counted as `io_retries`.
/// [`VqfError::Unencodable`] is a property of the dataset, not the disk,
/// and is never retried.
pub fn write_vqf(dataset: &Dataset, path: &Path) -> Result<(), VqfError> {
    let _span = obs::global().span(obs::Stage::Format);
    let mut unencodable: Option<VqfError> = None;
    let result = retry_io(&RetryPolicy::durable_writes(), || {
        let mut file = AtomicFile::create(path)?;
        match write_vqf_to(dataset, &mut file) {
            Ok(_) => {}
            Err(VqfError::Io(e)) => return Err(e),
            Err(other) => {
                // Stash the non-IO error and surface a non-transient
                // sentinel so `retry_io` returns immediately.
                unencodable = Some(other);
                return Err(io::Error::new(io::ErrorKind::InvalidData, "unencodable"));
            }
        }
        file.commit()
    });
    match result {
        Ok(()) => Ok(()),
        Err(e) => Err(unencodable.unwrap_or(VqfError::Io(e))),
    }
}

/// Stream `dataset` as VQF into any writer, returning the number of
/// session records written.
///
/// Fails with [`VqfError::Unencodable`] when a dictionary name exceeds
/// the `u16` length prefix or a session references an id outside its
/// dictionary (a corrupted in-memory dataset).
pub fn write_vqf_to<W: Write>(dataset: &Dataset, mut out: W) -> Result<u64, VqfError> {
    out.write_all(&encode_header())?;
    let mut offset = HEADER_LEN;

    let mut dicts = [SectionEntry {
        offset: 0,
        len: 0,
        count: 0,
        checksum: 0,
    }; DICT_COUNT];
    for (dim, slot) in dicts.iter_mut().enumerate() {
        let payload = encode_dict(dataset, AttrKey::from_index(dim))?;
        *slot = SectionEntry {
            offset,
            len: payload.len() as u64,
            count: dataset.dict(AttrKey::from_index(dim)).len() as u32,
            checksum: layout::checksum(&payload),
        };
        out.write_all(&payload)?;
        offset += payload.len() as u64;
    }

    let widths: [u8; 7] =
        std::array::from_fn(|dim| id_width(dataset.dict(AttrKey::from_index(dim)).len()));
    let mut chunks = Vec::with_capacity(dataset.num_epochs() as usize);
    let mut total_sessions = 0u64;
    for e in 0..dataset.num_epochs() {
        let payload = encode_chunk(dataset, EpochId(e), &widths)?;
        let count = dataset.epoch(EpochId(e)).len() as u32;
        total_sessions += u64::from(count);
        chunks.push(SectionEntry {
            offset,
            len: payload.len() as u64,
            count,
            checksum: layout::checksum(&payload),
        });
        out.write_all(&payload)?;
        offset += payload.len() as u64;
    }

    let footer = Footer {
        num_epochs: dataset.num_epochs(),
        total_sessions,
        meta: dataset.meta.clone(),
        dicts,
        chunks,
        extensions: Vec::new(),
    };
    let footer_bytes = footer.encode()?;
    out.write_all(&footer_bytes)?;
    out.write_all(&encode_trailer(
        footer_bytes.len() as u64,
        layout::checksum(&footer_bytes),
    ))?;
    out.flush()?;
    obs::global().add(obs::Counter::VqfRecordsWritten, total_sessions);
    Ok(total_sessions)
}

/// Dictionary section payload: `u32` value count, then each name as a
/// `u16`-length-prefixed UTF-8 string, in id order.
fn encode_dict(dataset: &Dataset, key: AttrKey) -> Result<Vec<u8>, VqfError> {
    let dict = dataset.dict(key);
    let mut out = Vec::new();
    out.extend_from_slice(&(dict.len() as u32).to_le_bytes());
    for id in 0..dict.len() as u32 {
        let name = dict.name(id).expect("dense dictionary ids");
        let len = u16::try_from(name.len()).map_err(|_| VqfError::Unencodable {
            detail: format!(
                "{key} name of {} bytes exceeds the u16 length prefix",
                name.len()
            ),
        })?;
        out.extend_from_slice(&len.to_le_bytes());
        out.extend_from_slice(name.as_bytes());
    }
    Ok(out)
}

/// Epoch chunk payload: `u32` session count; seven dictionary-id columns
/// (each `u8` width tag + `count × width` little-endian ids, in
/// [`AttrKey::ALL`] order); then the five fixed-width metric columns
/// (`join_failed` as one byte per session, `join_time_ms` as `u32`,
/// `play_duration_s` / `buffering_s` / `avg_bitrate_kbps` as IEEE-754
/// `f32` bit patterns).
fn encode_chunk(dataset: &Dataset, epoch: EpochId, widths: &[u8; 7]) -> Result<Vec<u8>, VqfError> {
    let data = dataset.epoch(epoch);
    let n = data.len();
    let mut out = Vec::with_capacity(4 + n * 24);
    out.extend_from_slice(&(n as u32).to_le_bytes());
    for dim in 0..DICT_COUNT {
        let width = widths[dim];
        out.push(width);
        let dict_len = dataset.dict(AttrKey::from_index(dim)).len() as u32;
        for attrs in &data.attrs {
            let id = attrs.values[dim];
            if id >= dict_len {
                return Err(VqfError::Unencodable {
                    detail: format!(
                        "epoch {} references {} id {id} outside its dictionary of {dict_len}",
                        epoch.0,
                        AttrKey::from_index(dim)
                    ),
                });
            }
            match width {
                1 => out.push(id as u8),
                2 => out.extend_from_slice(&(id as u16).to_le_bytes()),
                _ => out.extend_from_slice(&id.to_le_bytes()),
            }
        }
    }
    for q in &data.quality {
        out.push(u8::from(q.join_failed));
    }
    for q in &data.quality {
        out.extend_from_slice(&q.join_time_ms.to_le_bytes());
    }
    for q in &data.quality {
        out.extend_from_slice(&q.play_duration_s.to_bits().to_le_bytes());
    }
    for q in &data.quality {
        out.extend_from_slice(&q.buffering_s.to_bits().to_le_bytes());
    }
    for q in &data.quality {
        out.extend_from_slice(&q.avg_bitrate_kbps.to_bits().to_le_bytes());
    }
    Ok(out)
}
