//! Read-only memory mapping of a VQF file — the workspace's one audited
//! `unsafe` module for zero-copy reads.
//!
//! The workspace takes no external dependencies, so there is no `libc` to
//! call `mmap(2)` through; on the supported targets (x86_64 and aarch64
//! Linux) the two syscalls are issued directly with inline assembly.
//! Everywhere else [`Mmap::map`] reports `Unsupported` and the reader
//! falls back to its safe `pread` path ([`crate::reader::Backend::Pread`]).
//!
//! # Safety argument
//!
//! * The mapping is `PROT_READ` + `MAP_PRIVATE`: the memory is read-only
//!   and copy-on-write, so no write through the map is possible and no
//!   write by this process can reach the file.
//! * The map length is the file length at `map` time, taken from
//!   `fstat` via `File::metadata`; the returned slice never exceeds it.
//! * The fd is only needed *during* the `mmap` call — the mapping stays
//!   valid after the `File` is dropped (the kernel keeps the backing
//!   object alive), so `Mmap` owning just `(ptr, len)` is sound.
//! * `munmap` runs exactly once, in `Drop`, with the same `(ptr, len)`
//!   pair the kernel returned.
//! * The one real hazard of file-backed mappings — another process
//!   truncating the file mid-read turns loads into `SIGBUS` — is
//!   accepted and documented: VQF files are immutable once committed
//!   (written via temp-file + rename), so a reader only races a writer
//!   if an operator actively overwrites an analysis input mid-run.
//! * Zero-length files are never mapped (`mmap` rejects length 0);
//!   [`Mmap::map`] returns an empty-slice sentinel instead.

use std::fs::File;
use std::io;
use std::ops::Deref;

/// Whether this build can memory-map at all (Linux on x86_64/aarch64).
pub const MMAP_SUPPORTED: bool = cfg!(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
));

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod sys {
    use std::os::unix::io::RawFd;

    pub const PROT_READ: usize = 0x1;
    pub const MAP_PRIVATE: usize = 0x02;

    /// Raw `mmap(2)`. Returns the mapped address, or `-errno` encoded as
    /// a negative value in `(-4096, 0)`.
    ///
    /// # Safety
    /// `fd` must be a valid open file descriptor; `len` must be nonzero.
    #[cfg(target_arch = "x86_64")]
    pub unsafe fn mmap(len: usize, fd: RawFd) -> isize {
        const SYS_MMAP: isize = 9;
        let ret: isize;
        core::arch::asm!(
            "syscall",
            inlateout("rax") SYS_MMAP => ret,
            in("rdi") 0usize,               // addr: kernel chooses
            in("rsi") len,
            in("rdx") PROT_READ,
            in("r10") MAP_PRIVATE,
            in("r8") fd as isize,
            in("r9") 0usize,                // offset
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack)
        );
        ret
    }

    /// Raw `munmap(2)`.
    ///
    /// # Safety
    /// `(addr, len)` must be exactly what `mmap` returned.
    #[cfg(target_arch = "x86_64")]
    pub unsafe fn munmap(addr: usize, len: usize) -> isize {
        const SYS_MUNMAP: isize = 11;
        let ret: isize;
        core::arch::asm!(
            "syscall",
            inlateout("rax") SYS_MUNMAP => ret,
            in("rdi") addr,
            in("rsi") len,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack)
        );
        ret
    }

    /// Raw `mmap(2)` (aarch64 syscall convention).
    ///
    /// # Safety
    /// As for the x86_64 variant.
    #[cfg(target_arch = "aarch64")]
    pub unsafe fn mmap(len: usize, fd: RawFd) -> isize {
        const SYS_MMAP: isize = 222;
        let ret: isize;
        core::arch::asm!(
            "svc #0",
            in("x8") SYS_MMAP,
            inlateout("x0") 0usize => ret,  // addr: kernel chooses
            in("x1") len,
            in("x2") PROT_READ,
            in("x3") MAP_PRIVATE,
            in("x4") fd as isize,
            in("x5") 0usize,                // offset
            options(nostack)
        );
        ret
    }

    /// Raw `munmap(2)` (aarch64 syscall convention).
    ///
    /// # Safety
    /// As for the x86_64 variant.
    #[cfg(target_arch = "aarch64")]
    pub unsafe fn munmap(addr: usize, len: usize) -> isize {
        const SYS_MUNMAP: isize = 215;
        let ret: isize;
        core::arch::asm!(
            "svc #0",
            in("x8") SYS_MUNMAP,
            inlateout("x0") addr => ret,
            in("x1") len,
            options(nostack)
        );
        ret
    }
}

/// A read-only memory map of one file, dereferencing to `&[u8]`.
#[derive(Debug)]
pub struct Mmap {
    /// Null exactly when `len == 0` (the unmapped empty-file sentinel).
    ptr: *const u8,
    len: usize,
}

// SAFETY: the mapping is immutable (PROT_READ) shared memory with no
// interior mutability; concurrent reads from any thread are sound.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Map `file` read-only in its entirety.
    ///
    /// Returns `ErrorKind::Unsupported` on targets without the syscall
    /// shims — callers fall back to pread.
    pub fn map(file: &File) -> io::Result<Mmap> {
        #[cfg(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        ))]
        {
            use std::os::unix::io::AsRawFd;
            let len = usize::try_from(file.metadata()?.len())
                .map_err(|_| io::Error::new(io::ErrorKind::OutOfMemory, "file exceeds usize"))?;
            if len == 0 {
                return Ok(Mmap {
                    ptr: std::ptr::null(),
                    len: 0,
                });
            }
            // SAFETY: fd is open (we hold &File), len is nonzero; the
            // return value is checked for the kernel's -errno range
            // before being treated as an address.
            let ret = unsafe { sys::mmap(len, file.as_raw_fd()) };
            if (-4096..0).contains(&ret) {
                return Err(io::Error::from_raw_os_error(-ret as i32));
            }
            Ok(Mmap {
                ptr: ret as *const u8,
                len,
            })
        }
        #[cfg(not(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        )))]
        {
            let _ = file;
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "mmap is only wired up on x86_64/aarch64 Linux; use the pread backend",
            ))
        }
    }

    /// Mapped length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for the zero-length sentinel.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        if self.len == 0 {
            return &[];
        }
        // SAFETY: ptr/len come from a successful PROT_READ mapping that
        // lives until Drop; the memory is never written through this
        // process (MAP_PRIVATE read-only).
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        #[cfg(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        ))]
        if self.len != 0 {
            // SAFETY: exact (addr, len) pair returned by mmap; called
            // once (Drop runs once, and nothing else unmaps).
            unsafe {
                sys::munmap(self.ptr as usize, self.len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn maps_file_contents_exactly() {
        if !MMAP_SUPPORTED {
            return;
        }
        let dir = std::env::temp_dir();
        let path = dir.join(format!("vqlens-mmap-test-{}", std::process::id()));
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&payload)
            .unwrap();
        let file = File::open(&path).unwrap();
        let map = Mmap::map(&file).expect("mmap");
        assert_eq!(&map[..], &payload[..]);
        drop(file); // mapping must outlive the fd
        assert_eq!(map.len(), payload.len());
        assert_eq!(&map[9_990..], &payload[9_990..]);
        drop(map);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        if !MMAP_SUPPORTED {
            return;
        }
        let path = std::env::temp_dir().join(format!("vqlens-mmap-empty-{}", std::process::id()));
        std::fs::File::create(&path).unwrap();
        let file = File::open(&path).unwrap();
        let map = Mmap::map(&file).expect("mmap of empty file");
        assert!(map.is_empty());
        assert_eq!(&map[..], b"");
        let _ = std::fs::remove_file(&path);
    }
}
