//! The normative VQF on-disk layout: constants, the footer model, and the
//! byte-level encode/decode primitives shared by the writer and reader.
//!
//! Everything here mirrors `docs/FORMAT.md` — the spec is the contract,
//! this module is its one implementation. All multi-byte integers are
//! **little-endian**; all checksums are 64-bit FNV-1a
//! ([`vqlens_resilience::Hasher64`], the same function the WAL frames and
//! checkpoint manifests use).
//!
//! ```text
//! file := header ‖ dict-section ×7 ‖ epoch-chunk ×num_epochs ‖ footer ‖ trailer
//! ```
//!
//! The header carries only identity (magic, version, endianness); all
//! structure lives in the footer at the end of the file so the writer can
//! stream sections without seeking — the reader finds the footer through
//! the fixed-size trailer at EOF, exactly like Parquet's footer locator.

use crate::VqfError;
use vqlens_model::dataset::DatasetMeta;
use vqlens_resilience::Hasher64;

/// Leading magic: the first four bytes of every VQF file.
pub const MAGIC: [u8; 4] = *b"VQF1";

/// Trailing magic: the last four bytes of every VQF file (the leading
/// magic reversed, so a truncated copy can never end with it).
pub const TRAILING_MAGIC: [u8; 4] = *b"1FQV";

/// Current (and only) format version.
pub const VERSION: u8 = 1;

/// Endianness marker: `0x01` = little-endian. No other value is defined;
/// readers must reject anything else rather than byte-swap.
pub const ENDIAN_LITTLE: u8 = 0x01;

/// Byte length of the fixed file header.
pub const HEADER_LEN: u64 = 16;

/// Byte length of the fixed file trailer (footer locator).
pub const TRAILER_LEN: u64 = 20;

/// Version of the footer encoding itself (bumped independently of the
/// file [`VERSION`] when only the footer grows new fields).
pub const FOOTER_VERSION: u32 = 1;

/// Number of dictionary sections (one per attribute dimension).
pub const DICT_COUNT: usize = 7;

/// 64-bit FNV-1a over `bytes` — the checksum function for every
/// checksummed region of a VQF file.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h = Hasher64::new();
    h.update(bytes);
    h.digest()
}

/// Encode the 16-byte header. Bytes 0..8 are identity (magic, version,
/// endianness, two reserved zero bytes); bytes 8..16 are the FNV-1a
/// checksum of bytes 0..8.
pub fn encode_header() -> [u8; HEADER_LEN as usize] {
    let mut header = [0u8; HEADER_LEN as usize];
    header[0..4].copy_from_slice(&MAGIC);
    header[4] = VERSION;
    header[5] = ENDIAN_LITTLE;
    // header[6..8] reserved, zero.
    let sum = checksum(&header[0..8]);
    header[8..16].copy_from_slice(&sum.to_le_bytes());
    header
}

/// Validate a 16-byte header read from offset 0.
pub fn validate_header(header: &[u8]) -> Result<(), VqfError> {
    if header.len() < HEADER_LEN as usize {
        return Err(VqfError::Truncated {
            detail: format!(
                "file too short for the {HEADER_LEN}-byte header ({} bytes)",
                header.len()
            ),
        });
    }
    if header[0..4] != MAGIC {
        let mut found = [0u8; 4];
        found.copy_from_slice(&header[0..4]);
        return Err(VqfError::NotVqf { found });
    }
    if header[4] != VERSION {
        return Err(VqfError::UnsupportedVersion { found: header[4] });
    }
    if header[5] != ENDIAN_LITTLE {
        return Err(VqfError::Corrupt {
            detail: format!(
                "endianness marker {:#04x} (only {ENDIAN_LITTLE:#04x} = little-endian is defined)",
                header[5]
            ),
        });
    }
    let stored = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
    let computed = checksum(&header[0..8]);
    if stored != computed {
        return Err(VqfError::ChecksumMismatch {
            section: "header".to_owned(),
            stored,
            computed,
        });
    }
    Ok(())
}

/// One contiguous checksummed byte range in the file body, described by a
/// footer entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionEntry {
    /// Absolute byte offset of the section payload.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u64,
    /// Logical element count: dictionary values for a dictionary
    /// section, sessions for an epoch chunk.
    pub count: u32,
    /// FNV-1a checksum of the payload bytes.
    pub checksum: u64,
}

/// An extension section the current reader does not interpret.
///
/// Forward compatibility: a future writer may append extra sections
/// between the last epoch chunk and the footer and list them here with a
/// fresh `kind`; a version-1 reader must skip entries whose `kind` it
/// does not recognize (their byte ranges are simply never read). No kinds
/// are defined yet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtensionEntry {
    /// Section type tag (no values are currently assigned).
    pub kind: u32,
    /// Byte range and checksum, as for [`SectionEntry`].
    pub section: SectionEntry,
}

/// The decoded footer: everything a reader needs to locate and verify
/// every section without scanning the file body.
#[derive(Debug, Clone, PartialEq)]
pub struct Footer {
    /// Number of epochs the trace spans (== number of epoch chunks).
    pub num_epochs: u32,
    /// Total session count across all epochs (redundant with the chunk
    /// entries; validated against their sum).
    pub total_sessions: u64,
    /// Dataset provenance carried through the file.
    pub meta: DatasetMeta,
    /// Dictionary sections, one per attribute dimension in
    /// `AttrKey::ALL` order.
    pub dicts: [SectionEntry; DICT_COUNT],
    /// Epoch chunks, index = epoch id.
    pub chunks: Vec<SectionEntry>,
    /// Unknown-section index (empty for version-1 writers).
    pub extensions: Vec<ExtensionEntry>,
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_str(out: &mut Vec<u8>, s: &str) -> Result<(), VqfError> {
    let len = u32::try_from(s.len()).map_err(|_| VqfError::Unencodable {
        detail: format!("string of {} bytes exceeds the u32 length prefix", s.len()),
    })?;
    push_u32(out, len);
    out.extend_from_slice(s.as_bytes());
    Ok(())
}

fn push_section(out: &mut Vec<u8>, e: &SectionEntry) {
    push_u64(out, e.offset);
    push_u64(out, e.len);
    push_u32(out, e.count);
    push_u64(out, e.checksum);
}

/// A bounds-checked little-endian cursor over a byte slice; every decode
/// error carries the section name for the diagnostic.
pub struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    section: &'a str,
}

impl<'a> Cursor<'a> {
    /// Cursor over `bytes`, attributing errors to `section`.
    pub fn new(bytes: &'a [u8], section: &'a str) -> Cursor<'a> {
        Cursor {
            bytes,
            pos: 0,
            section,
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Take `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], VqfError> {
        if self.remaining() < n {
            return Err(VqfError::Truncated {
                detail: format!(
                    "{}: needed {n} bytes at offset {}, {} available",
                    self.section,
                    self.pos,
                    self.remaining()
                ),
            });
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, VqfError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, VqfError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, VqfError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, VqfError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Read a `u32`-length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, VqfError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| VqfError::Corrupt {
            detail: format!("{}: non-UTF-8 string", self.section),
        })
    }

    /// Read a `u16`-length-prefixed UTF-8 string (dictionary names).
    pub fn short_string(&mut self) -> Result<String, VqfError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| VqfError::Corrupt {
            detail: format!("{}: non-UTF-8 name", self.section),
        })
    }

    fn section_entry(&mut self) -> Result<SectionEntry, VqfError> {
        Ok(SectionEntry {
            offset: self.u64()?,
            len: self.u64()?,
            count: self.u32()?,
            checksum: self.u64()?,
        })
    }
}

impl Footer {
    /// Serialize the footer payload (checksummed and length-framed by the
    /// trailer, not internally).
    pub fn encode(&self) -> Result<Vec<u8>, VqfError> {
        let mut out = Vec::new();
        push_u32(&mut out, FOOTER_VERSION);
        push_u32(&mut out, self.num_epochs);
        push_u64(&mut out, self.total_sessions);
        push_str(&mut out, &self.meta.name)?;
        push_str(&mut out, &self.meta.description)?;
        match self.meta.seed {
            Some(seed) => {
                out.push(1);
                push_u64(&mut out, seed);
            }
            None => {
                out.push(0);
                push_u64(&mut out, 0);
            }
        }
        for dict in &self.dicts {
            push_section(&mut out, dict);
        }
        for chunk in &self.chunks {
            push_section(&mut out, chunk);
        }
        let ext_count =
            u32::try_from(self.extensions.len()).map_err(|_| VqfError::Unencodable {
                detail: "more than u32::MAX extension sections".to_owned(),
            })?;
        push_u32(&mut out, ext_count);
        for ext in &self.extensions {
            push_u32(&mut out, ext.kind);
            push_section(&mut out, &ext.section);
        }
        Ok(out)
    }

    /// Decode and structurally validate a footer payload. `file_len` and
    /// `footer_offset` bound every section: a section must lie entirely
    /// within `[HEADER_LEN, footer_offset)`.
    pub fn decode(bytes: &[u8], file_len: u64, footer_offset: u64) -> Result<Footer, VqfError> {
        let mut c = Cursor::new(bytes, "footer");
        let version = c.u32()?;
        if version != FOOTER_VERSION {
            return Err(VqfError::UnsupportedVersion {
                found: version.min(u32::from(u8::MAX)) as u8,
            });
        }
        let num_epochs = c.u32()?;
        let total_sessions = c.u64()?;
        let name = c.string()?;
        let description = c.string()?;
        let seed_present = c.u8()?;
        let seed_value = c.u64()?;
        let seed = match seed_present {
            0 => None,
            1 => Some(seed_value),
            other => {
                return Err(VqfError::Corrupt {
                    detail: format!("footer: seed-present flag {other} (must be 0 or 1)"),
                })
            }
        };
        let check_bounds = |e: &SectionEntry, what: &str| -> Result<(), VqfError> {
            let end = e
                .offset
                .checked_add(e.len)
                .ok_or_else(|| VqfError::Corrupt {
                    detail: format!("footer: {what} offset+len overflows"),
                })?;
            if e.offset < HEADER_LEN || end > footer_offset || end > file_len {
                return Err(VqfError::Corrupt {
                    detail: format!(
                        "footer: {what} [{}, {end}) outside the file body [{HEADER_LEN}, \
                         {footer_offset})",
                        e.offset
                    ),
                });
            }
            Ok(())
        };
        let mut dicts = [SectionEntry {
            offset: 0,
            len: 0,
            count: 0,
            checksum: 0,
        }; DICT_COUNT];
        for (dim, slot) in dicts.iter_mut().enumerate() {
            let e = c.section_entry()?;
            check_bounds(&e, &format!("dictionary {dim}"))?;
            *slot = e;
        }
        let mut chunks = Vec::with_capacity(num_epochs as usize);
        let mut session_sum = 0u64;
        for epoch in 0..num_epochs {
            let e = c.section_entry()?;
            check_bounds(&e, &format!("epoch chunk {epoch}"))?;
            session_sum += u64::from(e.count);
            chunks.push(e);
        }
        if session_sum != total_sessions {
            return Err(VqfError::Corrupt {
                detail: format!(
                    "footer: chunk session counts sum to {session_sum}, \
                     total_sessions says {total_sessions}"
                ),
            });
        }
        let ext_count = c.u32()?;
        let mut extensions = Vec::new();
        for i in 0..ext_count {
            let kind = c.u32()?;
            let e = c.section_entry()?;
            check_bounds(&e, &format!("extension {i}"))?;
            extensions.push(ExtensionEntry { kind, section: e });
        }
        if c.remaining() != 0 {
            return Err(VqfError::Corrupt {
                detail: format!(
                    "footer: {} trailing bytes after the last field",
                    c.remaining()
                ),
            });
        }
        Ok(Footer {
            num_epochs,
            total_sessions,
            meta: DatasetMeta {
                name,
                description,
                seed,
            },
            dicts,
            chunks,
            extensions,
        })
    }
}

/// Encode the 20-byte trailer for a footer of `footer_len` bytes with
/// checksum `footer_checksum`.
pub fn encode_trailer(footer_len: u64, footer_checksum: u64) -> [u8; TRAILER_LEN as usize] {
    let mut trailer = [0u8; TRAILER_LEN as usize];
    trailer[0..8].copy_from_slice(&footer_len.to_le_bytes());
    trailer[8..16].copy_from_slice(&footer_checksum.to_le_bytes());
    trailer[16..20].copy_from_slice(&TRAILING_MAGIC);
    trailer
}

/// Decode a 20-byte trailer, returning `(footer_len, footer_checksum)`.
pub fn decode_trailer(trailer: &[u8]) -> Result<(u64, u64), VqfError> {
    if trailer.len() != TRAILER_LEN as usize {
        return Err(VqfError::Truncated {
            detail: format!("trailer must be {TRAILER_LEN} bytes, got {}", trailer.len()),
        });
    }
    if trailer[16..20] != TRAILING_MAGIC {
        return Err(VqfError::Truncated {
            detail: "missing trailing magic \"1FQV\" — file truncated or not VQF".to_owned(),
        });
    }
    let footer_len = u64::from_le_bytes(trailer[0..8].try_into().expect("8"));
    let footer_checksum = u64::from_le_bytes(trailer[8..16].try_into().expect("8"));
    Ok((footer_len, footer_checksum))
}

/// The byte width used for one attribute column's dictionary ids, chosen
/// from the dictionary's value count: the narrowest of {1, 2, 4} bytes
/// that can hold every id `0..count`.
pub fn id_width(dict_len: usize) -> u8 {
    if dict_len <= (1 << 8) {
        1
    } else if dict_len <= (1 << 16) {
        2
    } else {
        4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrips_and_rejects_damage() {
        let h = encode_header();
        validate_header(&h).expect("valid header");
        let mut bad = h;
        bad[0] = b'X';
        assert!(matches!(
            validate_header(&bad),
            Err(VqfError::NotVqf { .. })
        ));
        let mut bad = h;
        bad[4] = 9;
        assert!(matches!(
            validate_header(&bad),
            Err(VqfError::UnsupportedVersion { found: 9 })
        ));
        let mut bad = h;
        bad[8] ^= 0xff;
        assert!(matches!(
            validate_header(&bad),
            Err(VqfError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn trailer_roundtrips() {
        let t = encode_trailer(1234, 0xdead_beef);
        assert_eq!(decode_trailer(&t).unwrap(), (1234, 0xdead_beef));
        let mut bad = t;
        bad[19] = b'?';
        assert!(decode_trailer(&bad).is_err());
    }

    #[test]
    fn footer_roundtrips() {
        let entry = |o: u64, n: u32| SectionEntry {
            offset: HEADER_LEN + o,
            len: 10,
            count: n,
            checksum: 42,
        };
        let footer = Footer {
            num_epochs: 2,
            total_sessions: 7,
            meta: DatasetMeta {
                name: "t".into(),
                description: "d".into(),
                seed: Some(99),
            },
            dicts: std::array::from_fn(|i| entry(i as u64 * 10, i as u32)),
            chunks: vec![entry(70, 3), entry(80, 4)],
            extensions: vec![],
        };
        let bytes = footer.encode().unwrap();
        let back = Footer::decode(&bytes, 1000, 500).unwrap();
        assert_eq!(back, footer);
    }

    #[test]
    fn footer_rejects_out_of_bounds_sections() {
        let footer = Footer {
            num_epochs: 0,
            total_sessions: 0,
            meta: DatasetMeta::default(),
            dicts: std::array::from_fn(|_| SectionEntry {
                offset: 900, // beyond footer_offset below
                len: 50,
                count: 0,
                checksum: 0,
            }),
            chunks: vec![],
            extensions: vec![],
        };
        let bytes = footer.encode().unwrap();
        let err = Footer::decode(&bytes, 1000, 500).unwrap_err();
        assert!(matches!(err, VqfError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn id_width_breakpoints() {
        assert_eq!(id_width(0), 1);
        assert_eq!(id_width(256), 1);
        assert_eq!(id_width(257), 2);
        assert_eq!(id_width(65536), 2);
        assert_eq!(id_width(65537), 4);
    }
}
