//! `scenario-attribution` oracle: the pipeline must keep recovering the
//! planted causes of every registered scenario family.
//!
//! Each [`vqlens_synth::families::ScenarioFamily`] plants labelled events
//! into a generated trace; `vqlens-score` grades the analysis output
//! against that ground truth (recall, precision, localization depth,
//! attribution mass) and commits a minimum acceptable score per family in
//! [`vqlens_score::FAMILY_FLOORS`]. This oracle re-scores all four
//! families at the committed floor seed and violates on any floor breach —
//! so an attribution regression anywhere in the synth → analyze → critical
//! path fails `vqlens check` and the fuzz loop, not just the score CLI.
//!
//! Scoring a family is expensive (tens of thousands of sessions, dozens of
//! epoch analyses), and `check_dataset` runs once per fuzz iteration; the
//! results are computed once per process and cached — the floors are a
//! property of the code at a pinned seed, not of the dataset under check.

use crate::CheckReport;
use std::sync::OnceLock;
use vqlens_score::{family_floor, score_family, FamilyResult};
use vqlens_synth::families::ScenarioFamily;

/// The seed [`vqlens_score::FAMILY_FLOORS`] was measured and committed at.
pub const FLOOR_SEED: u64 = 42;

fn floor_seed_results() -> &'static [FamilyResult] {
    static RESULTS: OnceLock<Vec<FamilyResult>> = OnceLock::new();
    RESULTS.get_or_init(|| {
        ScenarioFamily::ALL
            .into_iter()
            .map(|family| score_family(family, FLOOR_SEED))
            .collect()
    })
}

/// Score every registered scenario family at [`FLOOR_SEED`] and violate
/// on each committed-floor breach (`scenario-attribution`).
pub fn check_scenario_attribution(report: &mut CheckReport) {
    for (family, result) in ScenarioFamily::ALL.into_iter().zip(floor_seed_results()) {
        report.ran(1);
        if result.score.truth_instances == 0 {
            report.violate(
                "scenario-attribution",
                None,
                None,
                format!(
                    "family {}: no scoreable (event, epoch) instances — \
                     planted events never became statistically visible",
                    family.name()
                ),
            );
            continue;
        }
        for violation in result.floor_violations(family_floor(family)) {
            report.violate(
                "scenario-attribution",
                None,
                None,
                format!("family {}: {violation}", family.name()),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// All four families clear their committed floors at the floor seed —
    /// the exact property `check_dataset` and the fuzz loop enforce.
    #[test]
    fn all_families_clear_their_floors_at_the_floor_seed() {
        let mut report = CheckReport::default();
        check_scenario_attribution(&mut report);
        assert_eq!(report.oracles_run, ScenarioFamily::COUNT as u64);
        assert!(report.passed(), "scenario-attribution violations: {report}");
    }

    /// The cache is keyed to the process, not the report: a second run
    /// adds evaluations without re-scoring (and stays clean).
    #[test]
    fn oracle_is_idempotent_across_reports() {
        let mut a = CheckReport::default();
        check_scenario_attribution(&mut a);
        let mut b = CheckReport::default();
        check_scenario_attribution(&mut b);
        assert_eq!(a.oracles_run, b.oracles_run);
        assert_eq!(a.passed(), b.passed());
    }
}
