//! Incremental-maintenance oracle: an epoch analyzed through the delta
//! path ([`IncrementalEpoch`] — buffered appends, `CubeTable::merge`,
//! dirty-mask problem-set patching) must be **bit-identical** to a
//! from-scratch analysis of the same sessions, for *any* append order and
//! *any* batching.
//!
//! `incremental-equivalence` replays every non-empty epoch of the dataset
//! through an [`IncrementalEpoch`] using a seed-derived random
//! permutation of its sessions and seed-derived random batch boundaries
//! (settling — i.e. merging — at every boundary), then demands exact
//! agreement with the uninterrupted analysis on four levels:
//!
//! 1. the cube itself — root counts and the full sorted entry run;
//! 2. the per-metric problem sets — global ratio (by f64 bit pattern) and
//!    the cluster→counts map;
//! 3. the per-metric critical sets — the cluster map with attribution
//!    shares compared by bit pattern;
//! 4. the attribution totals (`problems_attributed`, conservation input).
//!
//! This is the contract that lets `vqlens serve` answer `/report` from
//! incrementally maintained state and still promise byte-identical output
//! to a batch recomputation (and to a killed-and-WAL-replayed twin).

use crate::CheckReport;
use vqlens_cluster::analyze::{EpochAnalysis, IncrementalEpoch};
use vqlens_cluster::critical::CriticalParams;
use vqlens_cluster::problem::SignificanceParams;
use vqlens_model::dataset::Dataset;
use vqlens_model::metric::{Metric, Thresholds};

/// Run the incremental-equivalence oracle over every non-empty epoch,
/// comparing against the uninterrupted `analyses` (in the same order
/// `check_dataset` produced them).
pub fn check_incremental(
    dataset: &Dataset,
    thresholds: &Thresholds,
    sig: &SignificanceParams,
    params: &CriticalParams,
    analyses: &[EpochAnalysis],
    seed: u64,
    report: &mut CheckReport,
) {
    for original in analyses {
        let id = original.epoch;
        let data = dataset.epoch(id);
        let sessions: Vec<_> = data.iter().collect();
        let n = sessions.len();
        if n == 0 {
            continue;
        }
        let mut rng = Lcg::new(seed ^ u64::from(id.0).wrapping_mul(0xd134_2543_de82_ef95));

        // Random append schedule: a permutation of the epoch's sessions...
        let mut order: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            order.swap(i, rng.below(i as u64 + 1) as usize);
        }
        // ...split at random batch boundaries, with a merge after every
        // batch so the equivalence is checked against many intermediate
        // merge states, not just one final fold.
        let mut inc = IncrementalEpoch::new(id, thresholds, sig);
        let mut pushed = 0usize;
        while pushed < n {
            let batch = 1 + rng.below(1 + n as u64 / 3) as usize;
            for _ in 0..batch.min(n - pushed) {
                let (attrs, quality) = sessions[order[pushed]];
                inc.push(attrs, quality);
                pushed += 1;
            }
            inc.settle();
        }

        report.ran(1);
        let incremental = inc.analysis(params);
        let ctx = inc.context();

        // Level 1: the merged cube is the built cube, entry for entry.
        let scratch = vqlens_cluster::analyze::AnalysisContext::compute(id, data, thresholds, sig);
        if ctx.cube.root != scratch.cube.root {
            report.violate(
                "incremental-equivalence",
                Some(id),
                None,
                format!(
                    "merged cube root {:?} differs from built root {:?}",
                    ctx.cube.root, scratch.cube.root
                ),
            );
        }
        if ctx.cube.entries() != scratch.cube.entries() {
            report.violate(
                "incremental-equivalence",
                Some(id),
                None,
                format!(
                    "merged cube holds {} entries, built cube {} (or differing runs)",
                    ctx.cube.entries().len(),
                    scratch.cube.entries().len()
                ),
            );
        }

        // Levels 2–4: problem sets, critical sets, attribution totals.
        if incremental.total_sessions != original.total_sessions {
            report.violate(
                "incremental-equivalence",
                Some(id),
                None,
                format!(
                    "incremental path saw {} sessions, uninterrupted run {}",
                    incremental.total_sessions, original.total_sessions
                ),
            );
        }
        for m in Metric::ALL {
            let inc_m = incremental.metric(m);
            let orig_m = original.metric(m);
            if inc_m.problems.global_ratio.to_bits() != orig_m.problems.global_ratio.to_bits() {
                report.violate(
                    "incremental-equivalence",
                    Some(id),
                    Some(m),
                    format!(
                        "global ratio {} (incremental) vs {} (from scratch)",
                        inc_m.problems.global_ratio, orig_m.problems.global_ratio
                    ),
                );
            }
            if inc_m.problems.clusters != orig_m.problems.clusters {
                report.violate(
                    "incremental-equivalence",
                    Some(id),
                    Some(m),
                    format!(
                        "problem set of {} clusters (incremental) vs {} (from scratch)",
                        inc_m.problems.clusters.len(),
                        orig_m.problems.clusters.len()
                    ),
                );
            }
            if !critical_equal(inc_m, orig_m) {
                report.violate(
                    "incremental-equivalence",
                    Some(id),
                    Some(m),
                    format!(
                        "critical set of {} clusters / {} attributed (incremental) vs {} / {}",
                        inc_m.critical.clusters.len(),
                        inc_m.critical.problems_attributed,
                        orig_m.critical.clusters.len(),
                        orig_m.critical.problems_attributed,
                    ),
                );
            }
        }
    }
}

/// Exact equality of two critical sets: cluster maps with every
/// attribution share compared by f64 bit pattern, plus the set-level
/// totals.
pub(crate) fn critical_equal(
    a: &vqlens_cluster::analyze::MetricAnalysis,
    b: &vqlens_cluster::analyze::MetricAnalysis,
) -> bool {
    let (ca, cb) = (&a.critical, &b.critical);
    if ca.global_ratio.to_bits() != cb.global_ratio.to_bits()
        || ca.total_sessions != cb.total_sessions
        || ca.total_problems != cb.total_problems
        || ca.problems_in_problem_clusters != cb.problems_in_problem_clusters
        || ca.problems_attributed.to_bits() != cb.problems_attributed.to_bits()
        || ca.clusters.len() != cb.clusters.len()
    {
        return false;
    }
    ca.clusters.iter().all(|(key, sa)| {
        cb.clusters.get(key).is_some_and(|sb| {
            sa.sessions == sb.sessions
                && sa.problems == sb.problems
                && sa.attributed_problems.to_bits() == sb.attributed_problems.to_bits()
                && sa.attributed_sessions.to_bits() == sb.attributed_sessions.to_bits()
        })
    })
}

/// Deterministic 64-bit LCG (MMIX constants) — the checker avoids a rand
/// dependency and needs reproducibility from the seed alone.
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Lcg {
        Lcg(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1))
    }

    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.0
    }

    /// Uniform-ish draw in `0..bound` (`bound` ≥ 1).
    fn below(&mut self, bound: u64) -> u64 {
        (self.next() >> 16) % bound.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqlens_model::epoch::EpochId;
    use vqlens_synth::scenario::{generate, Scenario};

    #[test]
    fn incremental_oracle_passes_on_a_smoke_trace() {
        let output = generate(&Scenario::smoke());
        let thresholds = Thresholds::default();
        let sig = SignificanceParams::scaled_to(
            output.dataset.num_sessions() as u64 / u64::from(output.dataset.num_epochs().max(1)),
        );
        let params = CriticalParams::default();
        let analyses: Vec<EpochAnalysis> = (0..output.dataset.num_epochs())
            .map(EpochId)
            .filter(|id| !output.dataset.epoch(*id).is_empty())
            .map(|id| {
                EpochAnalysis::compute(id, output.dataset.epoch(id), &thresholds, &sig, &params)
            })
            .collect();
        let mut report = CheckReport::default();
        check_incremental(
            &output.dataset,
            &thresholds,
            &sig,
            &params,
            &analyses,
            0xFACADE,
            &mut report,
        );
        assert!(report.passed(), "incremental oracle violated:\n{report}");
        assert!(report.oracles_run >= 1);
    }

    #[test]
    fn incremental_oracle_catches_a_tampered_analysis() {
        let output = generate(&Scenario::smoke());
        let thresholds = Thresholds::default();
        let sig = SignificanceParams::scaled_to(
            output.dataset.num_sessions() as u64 / u64::from(output.dataset.num_epochs().max(1)),
        );
        let params = CriticalParams::default();
        let mut analyses: Vec<EpochAnalysis> = (0..output.dataset.num_epochs())
            .map(EpochId)
            .filter(|id| !output.dataset.epoch(*id).is_empty())
            .map(|id| {
                EpochAnalysis::compute(id, output.dataset.epoch(id), &thresholds, &sig, &params)
            })
            .collect();
        // An off-by-one in the supposedly uninterrupted run must be
        // flagged, not absorbed.
        analyses[0].total_sessions += 1;
        let mut report = CheckReport::default();
        check_incremental(
            &output.dataset,
            &thresholds,
            &sig,
            &params,
            &analyses,
            0xFACADE,
            &mut report,
        );
        assert!(!report.passed(), "tampered totals must be caught");
    }
}
