//! # vqlens-check
//!
//! The paper-invariant checker: the structural claims of *"Shedding Light
//! on the Structure of Internet Video Quality Problems in the Wild"*
//! (Jiang et al., CoNEXT 2013) encoded as executable oracles that
//! re-verify a pipeline run against the cluster cube it was computed from.
//!
//! The pipeline's unit tests check each stage against hand-built
//! fixtures; the oracles here check *whole runs* against the definitions
//! themselves, independently re-deriving every condition instead of
//! trusting the stage that produced it:
//!
//! * [`epoch`] — per-epoch oracles: the §3.2 phase-transition property of
//!   every critical cluster (all significant descendants remain problem
//!   clusters; removing the cluster's sessions de-flags every ancestor),
//!   §3.1 problem-set soundness and completeness, attribution
//!   conservation, and cube-vs-naive-projection agreement on sampled
//!   attribute masks.
//! * [`trace`] — cross-epoch oracles: monitor/persistence duality over
//!   arbitrary (including gapped) traces, prevalence/persistence
//!   occurrence consistency, Table-1 coverage bounds, and monotonicity of
//!   top-k-by-prevalence coverage.
//! * [`resume`] — kill/resume oracles: a checkpointed run interrupted
//!   after k epochs (including with torn and truncated checkpoint files)
//!   and then resumed must reproduce the uninterrupted analyses exactly,
//!   and a changed config fingerprint must invalidate instead of resume.
//! * [`wal`] — write-ahead-log oracles for live ingestion
//!   (`vqlens-serve`): byte-exact replay across segment rotation,
//!   exact-prefix recovery from torn tails, and analysis equivalence of
//!   a WAL-replayed dataset with the uninterrupted run.
//! * [`mod@format`] — VQF round-trip oracles: a dataset written as the binary
//!   columnar format (`vqlens-format`) and read back must be
//!   bit-identical — same fingerprint, same analyses — the mmap and pread
//!   read backends must agree, and any flipped byte or truncated copy
//!   must be rejected, never misparsed.
//! * [`crash`] — exhaustive crash-point consistency: a fixed durable
//!   workload (WAL appends with rotation, checkpoint saves, a VQF export,
//!   dead-letter appends) has its durable-op schedule recorded through
//!   [`vqlens_resilience::ioenv`], then is re-run once per op boundary
//!   with a simulated kill; after every death the recovered state must
//!   keep all acknowledged records, resume only untorn checkpoints, load
//!   (or lack) the VQF file whole, and — once recovery completes the
//!   workload — be bit-identical to the uninterrupted run.
//! * [`incremental`] — delta-maintenance oracle: every epoch replayed
//!   through the incremental path (`CubeTable::merge` over randomized
//!   append schedules and batch boundaries) must be bit-identical to the
//!   from-scratch analysis — cube entries, problem sets, critical sets,
//!   and attribution totals.
//! * [`scenario`] — attribution oracle: every registered
//!   [`vqlens_synth::families::ScenarioFamily`] is re-scored against its
//!   planted ground truth (`vqlens-score`) at the committed floor seed,
//!   and each family must clear its committed precision/recall/
//!   localization/attribution-mass floor.
//! * [`mod@fuzz`] — a seeded driver that draws scenario variants and
//!   [`vqlens_synth::faults`] operators, round-trips them through CSV and
//!   lenient ingestion, and runs every oracle on the result.
//!
//! Violations are collected into a [`CheckReport`] (and mirrored into the
//! process-global [`vqlens_obs`] recorder as `check_oracles_run` /
//! `check_violations` counters); `vqlens check` drives this from the CLI.
//! The full oracle catalogue is documented in docs/INVARIANTS.md.
//!
//! **Paper map:** cross-cutting — each oracle names the §3/§4 definition
//! it re-verifies.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod crash;
pub mod epoch;
pub mod format;
pub mod fuzz;
pub mod incremental;
pub mod resume;
pub mod scenario;
pub mod trace;
pub mod wal;

use std::fmt;
use vqlens_cluster::analyze::EpochAnalysis;
use vqlens_cluster::critical::CriticalParams;
use vqlens_cluster::problem::SignificanceParams;
use vqlens_model::dataset::Dataset;
use vqlens_model::epoch::EpochId;
use vqlens_model::metric::{Metric, Thresholds};
use vqlens_obs as obs;

pub use fuzz::{fuzz, FuzzConfig};

/// One violated paper invariant: which oracle failed, where, and the
/// numbers that disagreed.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Stable name of the violated oracle (see docs/INVARIANTS.md).
    pub oracle: &'static str,
    /// The epoch the violation occurred in, for per-epoch oracles.
    pub epoch: Option<EpochId>,
    /// The metric the violation concerns, when the oracle is per-metric.
    pub metric: Option<Metric>,
    /// Human-readable account of the disagreement.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.oracle)?;
        if let Some(epoch) = self.epoch {
            write!(f, " @ epoch {}", epoch.0)?;
        }
        if let Some(metric) = self.metric {
            write!(f, " [{metric}]")?;
        }
        write!(f, ": {}", self.detail)
    }
}

/// Accumulated outcome of a checking run: how many oracle evaluations ran
/// and every violation they found.
#[derive(Debug, Clone, Default)]
pub struct CheckReport {
    /// Number of oracle evaluations performed.
    pub oracles_run: u64,
    /// Every violation found, in discovery order.
    pub violations: Vec<Violation>,
}

/// Violations printed in full before the report elides the rest.
const MAX_SHOWN: usize = 20;

impl CheckReport {
    /// True when no oracle was violated.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// Fold another report into this one.
    pub fn merge(&mut self, other: CheckReport) {
        self.oracles_run += other.oracles_run;
        self.violations.extend(other.violations);
    }

    /// Record `n` oracle evaluations (mirrored into the obs recorder).
    pub(crate) fn ran(&mut self, n: u64) {
        self.oracles_run += n;
        obs::global().add(obs::Counter::CheckOraclesRun, n);
    }

    /// Record one violation (mirrored into the obs recorder).
    pub(crate) fn violate(
        &mut self,
        oracle: &'static str,
        epoch: Option<EpochId>,
        metric: Option<Metric>,
        detail: String,
    ) {
        obs::global().incr(obs::Counter::CheckViolations);
        self.violations.push(Violation {
            oracle,
            epoch,
            metric,
            detail,
        });
    }
}

impl fmt::Display for CheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.passed() {
            return write!(
                f,
                "paper-invariant check: PASS ({} oracle evaluations, 0 violations)",
                self.oracles_run
            );
        }
        write!(
            f,
            "paper-invariant check: FAIL ({} oracle evaluations, {} violations)",
            self.oracles_run,
            self.violations.len()
        )?;
        for v in self.violations.iter().take(MAX_SHOWN) {
            write!(f, "\n  {v}")?;
        }
        if self.violations.len() > MAX_SHOWN {
            write!(f, "\n  ... and {} more", self.violations.len() - MAX_SHOWN)?;
        }
        Ok(())
    }
}

/// Analyze every non-empty epoch of a dataset exactly as the pipeline
/// would, run all per-epoch oracles on each, then the cross-epoch oracles
/// over the resulting trace. Returns the per-epoch analyses so callers
/// (e.g. the fuzz driver) can re-check gap-punched subsets without
/// re-analyzing.
pub fn check_dataset(
    dataset: &Dataset,
    thresholds: &Thresholds,
    sig: &SignificanceParams,
    params: &CriticalParams,
    seed: u64,
    report: &mut CheckReport,
) -> Vec<EpochAnalysis> {
    check_dataset_with_crash_budget(dataset, thresholds, sig, params, seed, None, report)
}

/// [`check_dataset`] with a bound on crash-point exploration: `None`
/// kills at *every* durable-op boundary (what `vqlens check` runs);
/// `Some(n)` explores at most `n` seeded boundaries — the fuzz loop uses
/// this so each iteration stays cheap while the seed space still sweeps
/// the whole schedule.
pub(crate) fn check_dataset_with_crash_budget(
    dataset: &Dataset,
    thresholds: &Thresholds,
    sig: &SignificanceParams,
    params: &CriticalParams,
    seed: u64,
    crash_points: Option<usize>,
    report: &mut CheckReport,
) -> Vec<EpochAnalysis> {
    let _span = obs::global().span(obs::Stage::Check);
    let mut analyses = Vec::new();
    for e in 0..dataset.num_epochs() {
        let id = EpochId(e);
        let data = dataset.epoch(id);
        if data.is_empty() {
            continue;
        }
        let mask_seed = seed ^ u64::from(e).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        analyses.push(epoch::check_epoch(
            data, id, thresholds, sig, params, mask_seed, report,
        ));
    }
    trace::check_trace(&analyses, report);
    resume::check_resume(dataset, thresholds, sig, params, &analyses, seed, report);
    wal::check_wal(dataset, thresholds, sig, params, &analyses, seed, report);
    incremental::check_incremental(dataset, thresholds, sig, params, &analyses, seed, report);
    format::check_format(dataset, thresholds, sig, params, &analyses, seed, report);
    match crash_points {
        None => crash::check_crash(dataset, &analyses, seed, report),
        Some(n) => crash::check_crash_sampled(dataset, &analyses, seed, n, report),
    }
    scenario::check_scenario_attribution(report);
    analyses
}

#[cfg(test)]
mod tests {
    use super::*;

    fn violation(oracle: &'static str) -> Violation {
        Violation {
            oracle,
            epoch: Some(EpochId(3)),
            metric: Some(Metric::JoinFailure),
            detail: "numbers disagreed".into(),
        }
    }

    #[test]
    fn report_passes_when_empty_and_merges() {
        let mut a = CheckReport {
            oracles_run: 5,
            violations: Vec::new(),
        };
        assert!(a.passed());
        assert!(a.to_string().contains("PASS"));
        let b = CheckReport {
            oracles_run: 2,
            violations: vec![violation("some-oracle")],
        };
        a.merge(b);
        assert_eq!(a.oracles_run, 7);
        assert!(!a.passed());
        let shown = a.to_string();
        assert!(shown.contains("FAIL") && shown.contains("some-oracle"));
    }

    #[test]
    fn long_violation_lists_are_elided() {
        let mut r = CheckReport::default();
        for _ in 0..(MAX_SHOWN + 4) {
            r.violations.push(violation("o"));
        }
        assert!(r.to_string().contains("... and 4 more"));
    }

    #[test]
    fn violation_display_names_the_site() {
        let shown = violation("attribution-conservation").to_string();
        assert!(shown.contains("attribution-conservation"));
        assert!(shown.contains("epoch 3"));
        assert!(shown.contains("JoinFailure"));
    }
}
