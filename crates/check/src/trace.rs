//! Cross-epoch oracles: the §4 temporal analyses re-verified against each
//! other.
//!
//! The temporal passes (persistence, prevalence, coverage, the online
//! monitor) each walk the same trace of [`EpochAnalysis`] values with
//! different bookkeeping. Their outputs are therefore strongly coupled —
//! occurrences must equal summed streak lengths, the monitor replay must
//! reproduce the offline event extraction, coverage rows must be
//! fractions — and the oracles here assert exactly those couplings.

use crate::CheckReport;
use vqlens_analysis::coverage::coverage_table;
use vqlens_analysis::monitor::{replay_matches_events, MonitorConfig};
use vqlens_analysis::persistence::{ClusterSource, PersistenceReport};
use vqlens_analysis::prevalence::PrevalenceReport;
use vqlens_cluster::analyze::EpochAnalysis;
use vqlens_model::attr::ClusterKey;
use vqlens_model::metric::Metric;
use vqlens_stats::FxHashSet;

/// How many top-by-prevalence clusters the coverage-monotonicity oracle
/// sweeps (the paper's Figure 9 plots the same curve).
const TOP_K: usize = 16;

/// Run every cross-epoch oracle over a trace of per-epoch analyses. The
/// trace may contain gaps (missing epochs) but must be strictly ordered;
/// an out-of-order trace is itself reported as a violation (and no
/// further trace oracles run, since the temporal passes assume order).
pub fn check_trace(analyses: &[EpochAnalysis], report: &mut CheckReport) {
    report.ran(1);
    if !analyses.windows(2).all(|w| w[0].epoch < w[1].epoch) {
        report.violate(
            "trace-epoch-order",
            None,
            None,
            format!(
                "trace of {} analyses is not strictly increasing by epoch",
                analyses.len()
            ),
        );
        return;
    }
    if analyses.is_empty() {
        return;
    }
    for metric in Metric::ALL {
        check_duality(analyses, metric, report);
        check_recurrence_consistency(analyses, metric, report);
        check_topk_coverage(analyses, metric, report);
    }
    check_coverage_rows(analyses, report);
}

/// §4.1 duality: for `close_after_h <= 1` (no gap bridging) the online
/// monitor's closed incidents must reproduce the offline
/// `extract_events` segmentation exactly — over any trace, including
/// gapped ones.
fn check_duality(analyses: &[EpochAnalysis], metric: Metric, report: &mut CheckReport) {
    let config = MonitorConfig {
        confirm_after_h: 1,
        close_after_h: 1,
        min_attributed: 0.0,
    };
    report.ran(1);
    if !replay_matches_events(config, analyses, metric) {
        report.violate(
            "monitor-persistence-duality",
            None,
            Some(metric),
            "online monitor replay diverges from offline event extraction at close_after_h = 1"
                .into(),
        );
    }
}

/// Persistence and prevalence walk the same occurrence sets: the clusters
/// they see must coincide, each cluster's summed streak lengths must equal
/// its occurrence count, and every derived quantity must stay within its
/// bounds.
fn check_recurrence_consistency(
    analyses: &[EpochAnalysis],
    metric: Metric,
    report: &mut CheckReport,
) {
    let persistence = PersistenceReport::compute(analyses, metric, ClusterSource::Critical);
    let prevalence = PrevalenceReport::compute(analyses, metric, ClusterSource::Critical);
    let epochs = analyses.len() as u32;

    report.ran(1);
    if persistence.num_clusters() != prevalence.num_clusters() {
        report.violate(
            "persistence-prevalence-clusters",
            None,
            Some(metric),
            format!(
                "persistence saw {} clusters but prevalence saw {}",
                persistence.num_clusters(),
                prevalence.num_clusters()
            ),
        );
    }

    report.ran(1);
    for (key, streaks) in &persistence.streaks {
        let occurred: u32 = streaks.iter().sum();
        let counted = prevalence.occurrences.get(key).copied().unwrap_or(0);
        if occurred != counted {
            report.violate(
                "persistence-prevalence-occurrences",
                None,
                Some(metric),
                format!("{key}: streaks sum to {occurred} epochs but prevalence counted {counted}"),
            );
        }
        if streaks.iter().any(|&len| len == 0 || len > epochs) {
            report.violate(
                "persistence-streak-bounds",
                None,
                Some(metric),
                format!("{key}: streak lengths {streaks:?} outside 1..={epochs}"),
            );
        }
    }

    report.ran(1);
    for (&key, &n) in &prevalence.occurrences {
        let p = prevalence.prevalence(key);
        if n > epochs || !(0.0..=1.0).contains(&p) {
            report.violate(
                "prevalence-bounds",
                None,
                Some(metric),
                format!("{key}: {n} occurrences in {epochs} epochs (prevalence {p})"),
            );
        }
    }
}

/// Figure 9 composition: attributing problems to the top-k clusters by
/// prevalence must yield a coverage fraction that is nondecreasing in `k`
/// and never exceeds 1. Catches negative or double-counted attribution
/// leaking through the ranking.
fn check_topk_coverage(analyses: &[EpochAnalysis], metric: Metric, report: &mut CheckReport) {
    let total_problems: u64 = analyses
        .iter()
        .map(|a| a.metric(metric).critical.total_problems)
        .sum();
    if total_problems == 0 {
        return;
    }
    let prevalence = PrevalenceReport::compute(analyses, metric, ClusterSource::Critical);
    let ranked = prevalence.ranked();

    report.ran(1);
    let mut selected: FxHashSet<ClusterKey> = FxHashSet::default();
    let mut prev_cov = 0.0f64;
    for (i, &(key, _)) in ranked.iter().take(TOP_K).enumerate() {
        selected.insert(key);
        let attributed: f64 = analyses
            .iter()
            .flat_map(|a| a.metric(metric).critical.clusters.iter())
            .filter(|(k, _)| selected.contains(k))
            .map(|(_, s)| s.attributed_problems)
            .sum();
        let cov = attributed / total_problems as f64;
        if cov + 1e-9 < prev_cov || cov > 1.0 + 1e-9 {
            report.violate(
                "topk-coverage-monotone",
                None,
                Some(metric),
                format!(
                    "coverage of top-{} clusters is {cov} (previous {prev_cov}) — \
                     must grow monotonically within [0, 1]",
                    i + 1
                ),
            );
            return;
        }
        prev_cov = cov;
    }
}

/// Table 1 bounds: every coverage-table mean is a fraction, critical
/// clusters are never more numerous (or more covering) than problem
/// clusters, and the reduction factor is nonnegative.
fn check_coverage_rows(analyses: &[EpochAnalysis], report: &mut CheckReport) {
    for row in coverage_table(analyses) {
        report.ran(1);
        let frac = 0.0..=1.0 + 1e-9;
        if !frac.contains(&row.mean_problem_coverage)
            || !frac.contains(&row.mean_critical_coverage)
            || row.mean_critical_coverage > row.mean_problem_coverage + 1e-9
            || row.mean_critical_clusters > row.mean_problem_clusters + 1e-9
            || row.mean_problem_clusters < 0.0
            || row.reduction < 0.0
        {
            report.violate(
                "coverage-table-bounds",
                None,
                Some(row.metric),
                format!(
                    "row out of bounds: {} problem / {} critical clusters, \
                     coverage {} / {}, reduction {}",
                    row.mean_problem_clusters,
                    row.mean_critical_clusters,
                    row.mean_problem_coverage,
                    row.mean_critical_coverage,
                    row.reduction
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqlens_cluster::analyze::AnalysisContext;
    use vqlens_cluster::critical::CriticalParams;
    use vqlens_cluster::problem::SignificanceParams;
    use vqlens_model::attr::SessionAttrs;
    use vqlens_model::dataset::EpochData;
    use vqlens_model::epoch::EpochId;
    use vqlens_model::metric::{QualityMeasurement, Thresholds};

    fn epoch_data(fail_cdn1: u64) -> EpochData {
        let mut d = EpochData::default();
        let good = QualityMeasurement::joined(500, 300.0, 0.0, 3000.0);
        for (asn, cdn, n, fails) in [
            (1u32, 1u32, 1000u64, fail_cdn1),
            (1, 2, 1000, 50),
            (2, 1, 1000, fail_cdn1),
            (2, 2, 7000, 50),
        ] {
            let attrs = SessionAttrs::new([asn, cdn, 0, 0, 0, 0, 0]);
            for i in 0..n {
                let q = if i < fails {
                    QualityMeasurement::failed()
                } else {
                    good
                };
                d.push(attrs, q);
            }
        }
        d
    }

    fn analyze(e: u32, fail_cdn1: u64) -> EpochAnalysis {
        let sig = SignificanceParams {
            ratio_multiplier: 1.5,
            min_sessions: 500,
            min_problem_sessions: 5,
        };
        let ctx = AnalysisContext::compute(
            EpochId(e),
            &epoch_data(fail_cdn1),
            &Thresholds::default(),
            &sig,
        );
        EpochAnalysis::from_context(&ctx, &CriticalParams::default())
    }

    #[test]
    fn clean_gapped_trace_passes() {
        // CDN1 degraded in epochs 0, 1 and 4; healthy in 2; epoch 3 is a
        // feed gap. Exercises event segmentation across both kinds of
        // discontinuity.
        let trace = vec![
            analyze(0, 300),
            analyze(1, 300),
            analyze(2, 50),
            analyze(4, 300),
        ];
        let mut report = CheckReport::default();
        check_trace(&trace, &mut report);
        assert!(
            report.passed(),
            "violations on a clean trace: {:?}",
            report.violations
        );
        assert!(report.oracles_run > 5);
    }

    #[test]
    fn unsorted_trace_is_reported_not_panicked() {
        let trace = vec![analyze(1, 300), analyze(0, 300)];
        let mut report = CheckReport::default();
        check_trace(&trace, &mut report);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].oracle, "trace-epoch-order");
    }

    #[test]
    fn duplicate_epochs_are_reported() {
        let trace = vec![analyze(2, 300), analyze(2, 300)];
        let mut report = CheckReport::default();
        check_trace(&trace, &mut report);
        assert!(report
            .violations
            .iter()
            .any(|v| v.oracle == "trace-epoch-order"));
    }

    #[test]
    fn empty_trace_is_trivially_clean() {
        let mut report = CheckReport::default();
        check_trace(&[], &mut report);
        assert!(report.passed());
    }
}
