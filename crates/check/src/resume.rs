//! Kill/resume oracles: an interrupted-then-resumed checkpointed run must
//! be indistinguishable from an uninterrupted one.
//!
//! These are *cross-run* oracles — where [`crate::epoch`] re-derives the
//! paper's definitions and [`crate::trace`] checks temporal consistency,
//! this module checks the durability contract of `vqlens-resilience`:
//!
//! * `resume-roundtrip` — every epoch checkpoint survives the
//!   save → reopen cycle bit-for-bit at the JSON level.
//! * `resume-equivalence` — for interruption points k ∈ {0, n/2, n−1}
//!   (plus a torn-file variant driven by
//!   [`vqlens_synth::faults::interrupt_checkpoints`]), a run killed after
//!   k checkpointed epochs and then resumed produces exactly the
//!   uninterrupted analyses: identical cluster sets, attribution, and
//!   totals, compared as canonical JSON values.
//! * `resume-invalidation` — reopening the directory under a different
//!   config fingerprint yields *no* resumed epochs: stale checkpoints can
//!   never leak into a differently-configured run.
//!
//! The oracles drive the real [`CheckpointStore`] against a scratch
//! directory under the system temp dir (removed afterwards); an I/O
//! failure of the harness itself is reported as `resume-io` rather than
//! silently passing.

use crate::CheckReport;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use vqlens_cluster::analyze::EpochAnalysis;
use vqlens_cluster::critical::CriticalParams;
use vqlens_cluster::problem::SignificanceParams;
use vqlens_model::dataset::Dataset;
use vqlens_model::epoch::EpochId;
use vqlens_model::metric::Thresholds;
use vqlens_resilience::{
    fingerprint_dataset, fingerprint_json, CheckpointStore, EpochCheckpoint, EpochStatus, Manifest,
};
use vqlens_synth::faults::{interrupt_checkpoints, InterruptKind};

/// Run the kill/resume oracles over a dataset and its uninterrupted
/// per-epoch analyses (as produced by [`crate::check_dataset`]'s loop).
/// Needs at least two analyzed epochs to have meaningful interruption
/// points; does nothing otherwise.
pub fn check_resume(
    dataset: &Dataset,
    thresholds: &Thresholds,
    sig: &SignificanceParams,
    params: &CriticalParams,
    analyses: &[EpochAnalysis],
    seed: u64,
    report: &mut CheckReport,
) {
    if analyses.len() < 2 {
        return;
    }
    let dir = scratch_dir(seed);
    let result = run_oracles(
        dataset, thresholds, sig, params, analyses, seed, &dir, report,
    );
    let _ = fs::remove_dir_all(&dir);
    if let Err(e) = result {
        report.violate(
            "resume-io",
            None,
            None,
            format!("checkpoint harness I/O failed: {e}"),
        );
    }
}

fn scratch_dir(seed: u64) -> PathBuf {
    std::env::temp_dir().join(format!(
        "vqlens-check-resume-{}-{seed:016x}",
        std::process::id()
    ))
}

fn manifest_for(
    dataset: &Dataset,
    thresholds: &Thresholds,
    sig: &SignificanceParams,
    params: &CriticalParams,
) -> Manifest {
    Manifest::new(
        fingerprint_json(&(thresholds, sig, params)),
        fingerprint_dataset(dataset),
        dataset.num_epochs(),
    )
}

#[allow(clippy::too_many_arguments)]
fn run_oracles(
    dataset: &Dataset,
    thresholds: &Thresholds,
    sig: &SignificanceParams,
    params: &CriticalParams,
    analyses: &[EpochAnalysis],
    seed: u64,
    dir: &Path,
    report: &mut CheckReport,
) -> io::Result<()> {
    let manifest = manifest_for(dataset, thresholds, sig, params);
    let n = analyses.len();

    // resume-roundtrip: save everything, reopen, demand JSON-identical
    // payloads in epoch order.
    let _ = fs::remove_dir_all(dir);
    let (store, _) = CheckpointStore::open(dir, manifest)?;
    for a in analyses {
        store.save_epoch(&EpochCheckpoint {
            epoch: a.epoch.0,
            status: EpochStatus::Ok,
            analysis: a.clone(),
        })?;
    }
    let (_, reloaded) = CheckpointStore::open(dir, manifest)?;
    report.ran(1);
    if reloaded.len() != n
        || !reloaded
            .iter()
            .zip(analyses)
            .all(|(cp, a)| json_equal(&cp.analysis, a))
    {
        report.violate(
            "resume-roundtrip",
            None,
            None,
            format!(
                "saved {n} epoch checkpoints, reopen returned {} with differing payloads",
                reloaded.len()
            ),
        );
    }

    // resume-invalidation: a perturbed config fingerprint must resume
    // nothing (and wipe the stale files).
    let mut other = manifest;
    other.config_hash ^= 0xdead_beef;
    let (_, stale) = CheckpointStore::open(dir, other)?;
    report.ran(1);
    if !stale.is_empty() {
        report.violate(
            "resume-invalidation",
            None,
            None,
            format!(
                "{} stale checkpoints resumed under a changed config fingerprint",
                stale.len()
            ),
        );
    }

    // resume-equivalence at several interruption points, including one
    // where the surviving directory is further damaged by a torn temp
    // file and a truncated checkpoint (both must be skipped and healed).
    for (k, damage) in [(0, false), (n / 2, true), (n - 1, false)] {
        let _ = fs::remove_dir_all(dir);
        let (store, _) = CheckpointStore::open(dir, manifest)?;
        for a in &analyses[..k] {
            store.save_epoch(&EpochCheckpoint {
                epoch: a.epoch.0,
                status: EpochStatus::Ok,
                analysis: a.clone(),
            })?;
        }
        let mut recomputable: Vec<u32> = analyses[k..].iter().map(|a| a.epoch.0).collect();
        if damage && k > 0 {
            interrupt_checkpoints(dir, InterruptKind::TornTempFile, seed)?;
            let s = interrupt_checkpoints(dir, InterruptKind::TruncatedCheckpoint, seed)?;
            for name in &s.damaged_files {
                // "epoch-XXXXXXXX.json" → the epoch id the resume must
                // now recompute on top of the killed tail.
                if let Some(e) = name
                    .strip_prefix("epoch-")
                    .and_then(|s| s.strip_suffix(".json"))
                    .and_then(|s| s.parse::<u32>().ok())
                {
                    recomputable.push(e);
                }
            }
        }

        let (_, resumed) = CheckpointStore::open(dir, manifest)?;
        let mut merged: Vec<EpochAnalysis> = resumed.into_iter().map(|cp| cp.analysis).collect();
        for &e in &recomputable {
            let id = EpochId(e);
            merged.push(EpochAnalysis::compute(
                id,
                dataset.epoch(id),
                thresholds,
                sig,
                params,
            ));
        }
        merged.sort_by_key(|a| a.epoch.0);

        report.ran(1);
        let equivalent =
            merged.len() == n && merged.iter().zip(analyses).all(|(m, a)| json_equal(m, a));
        if !equivalent {
            report.violate(
                "resume-equivalence",
                Some(EpochId(k as u32)),
                None,
                format!(
                    "run interrupted after {k}/{n} checkpointed epochs{} diverged from the \
                     uninterrupted analyses after resume",
                    if damage {
                        " (plus torn/truncated files)"
                    } else {
                        ""
                    }
                ),
            );
        }
    }
    Ok(())
}

/// Canonical comparison: `serde_json::Value` maps are ordered, so two
/// analyses agree iff their JSON values agree — independent of hash-map
/// iteration order.
fn json_equal(a: &EpochAnalysis, b: &EpochAnalysis) -> bool {
    match (serde_json::to_value(a), serde_json::to_value(b)) {
        (Ok(x), Ok(y)) => x == y,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqlens_model::attr::SessionAttrs;
    use vqlens_model::dataset::DatasetMeta;
    use vqlens_model::metric::QualityMeasurement;
    use vqlens_model::session::SessionRecord;

    fn tiny_dataset(epochs: u32) -> Dataset {
        let mut ds = Dataset::new(epochs, DatasetMeta::default());
        for e in 0..epochs {
            for i in 0..40u32 {
                let attrs = SessionAttrs::new([i % 3, i % 2, 0, 0, 0, 0, 0]);
                let q = if i % 4 == 0 {
                    QualityMeasurement::failed()
                } else {
                    QualityMeasurement::joined(400 + i, 300.0, (i % 5) as f32, 2800.0)
                };
                ds.push(SessionRecord::new(EpochId(e), attrs, q));
            }
        }
        ds
    }

    fn analyses_of(ds: &Dataset) -> Vec<EpochAnalysis> {
        (0..ds.num_epochs())
            .map(|e| {
                EpochAnalysis::compute(
                    EpochId(e),
                    ds.epoch(EpochId(e)),
                    &Thresholds::default(),
                    &SignificanceParams::default(),
                    &CriticalParams::default(),
                )
            })
            .collect()
    }

    #[test]
    fn clean_runs_pass_all_resume_oracles() {
        let ds = tiny_dataset(5);
        let analyses = analyses_of(&ds);
        let mut report = CheckReport::default();
        check_resume(
            &ds,
            &Thresholds::default(),
            &SignificanceParams::default(),
            &CriticalParams::default(),
            &analyses,
            0xc3c,
            &mut report,
        );
        assert!(report.passed(), "violations: {report}");
        assert!(report.oracles_run >= 5, "roundtrip + invalidation + 3 k's");
    }

    #[test]
    fn tampered_analyses_fire_resume_equivalence() {
        let ds = tiny_dataset(4);
        let mut analyses = analyses_of(&ds);
        // Tamper with one uninterrupted analysis: the resumed/merged run
        // recomputes the truth and must disagree with it.
        analyses[2].total_sessions += 1;
        let mut report = CheckReport::default();
        check_resume(
            &ds,
            &Thresholds::default(),
            &SignificanceParams::default(),
            &CriticalParams::default(),
            &analyses,
            0xc3d,
            &mut report,
        );
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.oracle == "resume-equivalence"),
            "expected resume-equivalence to fire: {report}"
        );
    }

    #[test]
    fn single_epoch_traces_are_skipped() {
        let ds = tiny_dataset(1);
        let analyses = analyses_of(&ds);
        let mut report = CheckReport::default();
        check_resume(
            &ds,
            &Thresholds::default(),
            &SignificanceParams::default(),
            &CriticalParams::default(),
            &analyses,
            7,
            &mut report,
        );
        assert_eq!(report.oracles_run, 0);
        assert!(report.passed());
    }
}
