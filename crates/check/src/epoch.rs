//! Per-epoch oracles: the §3.1/§3.2 definitions re-verified against the
//! cluster cube.
//!
//! Every oracle here re-derives its condition from the cube (or from the
//! leaves below it) instead of trusting the pass that produced the result
//! under test. The identification code and these oracles can only agree
//! when both implement the paper's definitions; a bug in either shows up
//! as a violation.

use crate::CheckReport;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vqlens_cluster::analyze::{AnalysisContext, EpochAnalysis, MetricAnalysis};
use vqlens_cluster::critical::CriticalParams;
use vqlens_cluster::cube::{ClusterCounts, CubeTable};
use vqlens_cluster::problem::SignificanceParams;
use vqlens_model::attr::{AttrMask, ClusterKey};
use vqlens_model::dataset::EpochData;
use vqlens_model::epoch::EpochId;
use vqlens_model::metric::{Metric, Thresholds};
use vqlens_stats::FxHashMap;

/// Non-full attribute masks sampled per epoch by the projection oracle.
const SAMPLED_MASKS: usize = 10;

/// Run every per-epoch oracle for one epoch. The epoch is analyzed
/// exactly as the pipeline analyzes it (pruned cube, then
/// [`EpochAnalysis::from_context`]); the resulting analysis is returned so
/// callers can chain the cross-epoch oracles without re-analyzing.
pub fn check_epoch(
    data: &EpochData,
    epoch: EpochId,
    thresholds: &Thresholds,
    sig: &SignificanceParams,
    params: &CriticalParams,
    mask_seed: u64,
    report: &mut CheckReport,
) -> EpochAnalysis {
    let ctx = AnalysisContext::compute(epoch, data, thresholds, sig);
    let analysis = EpochAnalysis::from_context(&ctx, params);
    check_cube(&ctx.cube, sig, mask_seed, report);
    for metric in Metric::ALL {
        check_problem_set(&ctx, metric, report);
        check_critical_set(&ctx, analysis.metric(metric), metric, params, report);
        check_attribution(&ctx, analysis.metric(metric), metric, report);
    }
    analysis
}

/// Cube integrity: the root must equal the sum of the leaves, and every
/// sampled mask run must equal the naive projection of the leaves onto
/// that mask (filtered by the significance prune the pipeline applied).
/// The leaves tile the epoch's sessions, so the naive projection is an
/// exact independent reconstruction of what the sort-and-merge cube
/// builder should have produced.
fn check_cube(cube: &CubeTable, sig: &SignificanceParams, seed: u64, report: &mut CheckReport) {
    let epoch = cube.epoch;
    report.ran(1);
    let mut leaf_sum = ClusterCounts::default();
    for (_, counts) in cube.leaves() {
        leaf_sum.add(counts);
    }
    if leaf_sum != cube.root {
        report.violate(
            "cube-root-conservation",
            Some(epoch),
            None,
            format!(
                "leaves sum to {leaf_sum:?} but the root holds {:?}",
                cube.root
            ),
        );
    }

    let mut rng = SmallRng::seed_from_u64(seed);
    for _ in 0..SAMPLED_MASKS {
        let mask = AttrMask(rng.gen_range(1..AttrMask::FULL.0));
        report.ran(1);
        let mut naive: FxHashMap<ClusterKey, ClusterCounts> = FxHashMap::default();
        for &(leaf, counts) in cube.leaves() {
            naive
                .entry(leaf.project_onto(mask))
                .or_default()
                .add(&counts);
        }
        let mut expected: Vec<(ClusterKey, ClusterCounts)> = naive
            .into_iter()
            .filter(|(_, c)| c.sessions >= sig.min_sessions)
            .collect();
        expected.sort_unstable_by_key(|(k, _)| k.0);
        let actual = cube.mask_slice(mask);
        if expected.as_slice() != actual {
            report.violate(
                "cube-projection-agreement",
                Some(epoch),
                None,
                format!(
                    "mask {:#04x}: cube run ({} entries) disagrees with the naive leaf projection ({} entries)",
                    mask.0,
                    actual.len(),
                    expected.len()
                ),
            );
        }
    }
}

/// §3.1 soundness and completeness: every cluster in the problem set must
/// pass the significance test on its cube counts (and carry exactly those
/// counts), and every cube cluster that passes the test must be in the
/// set.
fn check_problem_set(ctx: &AnalysisContext, metric: Metric, report: &mut CheckReport) {
    let ps = ctx.problems(metric);
    let epoch = ctx.epoch;
    let global = ctx.cube.global_ratio(metric);

    report.ran(1);
    if ps.global_ratio != global {
        report.violate(
            "problem-global-ratio",
            Some(epoch),
            Some(metric),
            format!(
                "problem set records global ratio {} but the cube says {global}",
                ps.global_ratio
            ),
        );
    }

    report.ran(1);
    for (&key, stat) in &ps.clusters {
        let counts = ctx.cube.counts(key);
        if counts.sessions != stat.sessions || counts.problems[metric.index()] != stat.problems {
            report.violate(
                "problem-stat-agreement",
                Some(epoch),
                Some(metric),
                format!(
                    "{key} recorded as {}/{} but the cube holds {}/{}",
                    stat.problems,
                    stat.sessions,
                    counts.problems[metric.index()],
                    counts.sessions
                ),
            );
        } else if !ctx.sig.is_problem(&counts, metric, global) {
            report.violate(
                "problem-significance",
                Some(epoch),
                Some(metric),
                format!("{key} is in the problem set but fails the §3.1 significance test"),
            );
        }
    }

    report.ran(1);
    for &(key, counts) in ctx.cube.entries() {
        if ctx.sig.is_problem(&counts, metric, global) && !ps.contains(key) {
            report.violate(
                "problem-completeness",
                Some(epoch),
                Some(metric),
                format!(
                    "{key} passes the §3.1 significance test but is missing from the problem set"
                ),
            );
        }
    }
}

/// §3.2 phase-transition property of every critical cluster, re-derived
/// from the cube: the descendant condition (the session-weighted fraction
/// of significant descendants that are healthy stays within tolerance),
/// the removal condition (subtracting the cluster de-flags every problem
/// ancestor), membership in the problem set, and the antichain half of
/// minimality.
fn check_critical_set(
    ctx: &AnalysisContext,
    ma: &MetricAnalysis,
    metric: Metric,
    params: &CriticalParams,
    report: &mut CheckReport,
) {
    let cs = &ma.critical;
    let ps = &ma.problems;
    let epoch = ctx.epoch;
    let global = ps.global_ratio;
    let keys: Vec<ClusterKey> = cs.clusters.keys().copied().collect();

    report.ran(1);
    for &key in &keys {
        if !ps.contains(key) {
            report.violate(
                "critical-subset-of-problem",
                Some(epoch),
                Some(metric),
                format!("critical cluster {key} is not a problem cluster"),
            );
        }
    }

    report.ran(1);
    for &a in &keys {
        for &b in &keys {
            if a != b && a.generalizes(b) {
                report.violate(
                    "critical-antichain",
                    Some(epoch),
                    Some(metric),
                    format!("{a} generalizes fellow critical cluster {b}"),
                );
            }
        }
    }

    // Descendant condition: accumulate, for every critical cluster, the
    // session weight of its significant strict descendants and of those
    // among them whose ratio alone is below the problem multiple
    // ("healthy" — evidence against a phase transition at the ancestor).
    report.ran(1);
    let mut critical_masks: Vec<AttrMask> = keys.iter().map(|k| k.mask()).collect();
    critical_masks.sort_unstable_by_key(|m| m.0);
    critical_masks.dedup();
    let mut desc_total: FxHashMap<ClusterKey, f64> = FxHashMap::default();
    let mut desc_healthy: FxHashMap<ClusterKey, f64> = FxHashMap::default();
    for (mask, run) in ctx.cube.slices() {
        let relevant: Vec<AttrMask> = critical_masks
            .iter()
            .copied()
            .filter(|&pm| pm != mask && pm.is_subset_of(mask))
            .collect();
        if relevant.is_empty() {
            continue;
        }
        for &(key, counts) in run {
            if counts.sessions < ctx.sig.min_sessions {
                continue;
            }
            let healthy = counts.ratio(metric) < ctx.sig.ratio_multiplier * global;
            for &pm in &relevant {
                let anc = key.project_onto(pm);
                if cs.clusters.contains_key(&anc) {
                    let w = counts.sessions as f64;
                    *desc_total.entry(anc).or_default() += w;
                    if healthy {
                        *desc_healthy.entry(anc).or_default() += w;
                    }
                }
            }
        }
    }
    for &key in &keys {
        let total = desc_total.get(&key).copied().unwrap_or(0.0);
        let healthy = desc_healthy.get(&key).copied().unwrap_or(0.0);
        if total > 0.0 && healthy > params.max_bad_descendant_fraction * total + 1e-9 * total {
            report.violate(
                "critical-descendant-condition",
                Some(epoch),
                Some(metric),
                format!(
                    "{key}: healthy session weight {healthy} of {total} significant-descendant \
                     weight exceeds the tolerance {}",
                    params.max_bad_descendant_fraction
                ),
            );
        }
    }

    // Removal condition: subtracting the cluster's own counts from any
    // strict ancestor that is a problem cluster must leave that ancestor
    // below the §3.1 significance test. Integer counts and the identical
    // f64 expression make this an exact re-derivation, no tolerance.
    report.ran(1);
    for &key in &keys {
        let Some(stats) = cs.clusters.get(&key) else {
            continue;
        };
        let own = ClusterCounts {
            sessions: stats.sessions,
            problems: {
                let mut p = [0u64; 4];
                p[metric.index()] = stats.problems;
                p
            },
        };
        let mask = key.mask();
        for pm in mask.nonempty_submasks() {
            if pm == mask {
                continue;
            }
            let anc = key.project_onto(pm);
            if !ps.contains(anc) {
                continue;
            }
            let remaining = ctx.cube.counts(anc).minus(&own);
            if ctx.sig.is_problem(&remaining, metric, global) {
                report.violate(
                    "critical-removal-condition",
                    Some(epoch),
                    Some(metric),
                    format!(
                        "removing critical cluster {key} leaves ancestor {anc} a problem cluster \
                         ({}/{} sessions remain)",
                        remaining.problems[metric.index()],
                        remaining.sessions
                    ),
                );
            }
        }
    }
}

/// Attribution conservation (§3.2): per-cluster attributed problems sum to
/// the set's total, the attribution chain
/// `attributed ≤ in-problem-clusters ≤ total problems` holds, both
/// coverages are fractions, and every per-cluster stat is internally
/// consistent.
fn check_attribution(
    ctx: &AnalysisContext,
    ma: &MetricAnalysis,
    metric: Metric,
    report: &mut CheckReport,
) {
    let cs = &ma.critical;
    let epoch = ctx.epoch;

    report.ran(1);
    if cs.total_sessions != ctx.cube.root.sessions
        || cs.total_problems != ctx.cube.root.problems[metric.index()]
    {
        report.violate(
            "attribution-totals",
            Some(epoch),
            Some(metric),
            format!(
                "critical set totals {}/{} disagree with the cube root {}/{}",
                cs.total_problems,
                cs.total_sessions,
                ctx.cube.root.problems[metric.index()],
                ctx.cube.root.sessions
            ),
        );
    }

    let eps = 1e-6 * (cs.total_problems as f64).max(1.0);

    report.ran(1);
    let sum: f64 = cs.clusters.values().map(|s| s.attributed_problems).sum();
    if (sum - cs.problems_attributed).abs() > eps {
        report.violate(
            "attribution-conservation",
            Some(epoch),
            Some(metric),
            format!(
                "per-cluster attributions sum to {sum} but problems_attributed is {}",
                cs.problems_attributed
            ),
        );
    }

    report.ran(1);
    if cs.problems_attributed > cs.problems_in_problem_clusters as f64 + eps
        || cs.problems_in_problem_clusters > cs.total_problems
    {
        report.violate(
            "attribution-bounds",
            Some(epoch),
            Some(metric),
            format!(
                "attribution chain violated: {} attributed, {} in problem clusters, {} total",
                cs.problems_attributed, cs.problems_in_problem_clusters, cs.total_problems
            ),
        );
    }

    report.ran(1);
    let coverage = cs.coverage();
    let pc_coverage = cs.problem_cluster_coverage();
    if !(0.0..=1.0 + 1e-9).contains(&coverage)
        || !(0.0..=1.0 + 1e-9).contains(&pc_coverage)
        || coverage > pc_coverage + 1e-9
    {
        report.violate(
            "attribution-coverage-bounds",
            Some(epoch),
            Some(metric),
            format!("coverage {coverage} / problem-cluster coverage {pc_coverage} out of order"),
        );
    }

    report.ran(1);
    for (&key, s) in &cs.clusters {
        if s.problems > s.sessions
            || s.attributed_problems < -eps
            || s.attributed_sessions + eps < s.attributed_problems
        {
            report.violate(
                "attribution-per-cluster",
                Some(epoch),
                Some(metric),
                format!(
                    "{key}: inconsistent stats (sessions {}, problems {}, attributed {}/{})",
                    s.sessions, s.problems, s.attributed_problems, s.attributed_sessions
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Violation;
    use vqlens_model::attr::{AttrKey, SessionAttrs};
    use vqlens_model::metric::QualityMeasurement;

    const GOOD: QualityMeasurement = QualityMeasurement {
        join_failed: false,
        join_time_ms: 500,
        play_duration_s: 300.0,
        buffering_s: 0.0,
        avg_bitrate_kbps: 3000.0,
    };

    fn push(d: &mut EpochData, asn: u32, cdn: u32, site: u32, n: u64, fail_n: u64) {
        let attrs = SessionAttrs::new([asn, cdn, site, 0, 0, 0, 0]);
        for i in 0..n {
            let q = if i < fail_n {
                QualityMeasurement::failed()
            } else {
                GOOD
            };
            d.push(attrs, q);
        }
    }

    /// The paper's Figure 4 shape: CDN1 is the underlying cause.
    fn figure4_epoch() -> EpochData {
        let mut d = EpochData::default();
        push(&mut d, 1, 1, 0, 1000, 300);
        push(&mut d, 1, 2, 0, 1000, 100);
        push(&mut d, 2, 1, 0, 1000, 300);
        push(&mut d, 2, 2, 0, 7000, 100);
        d
    }

    fn sig() -> SignificanceParams {
        SignificanceParams {
            ratio_multiplier: 1.5,
            min_sessions: 500,
            min_problem_sessions: 5,
        }
    }

    #[test]
    fn clean_epoch_passes_all_oracles() {
        let mut report = CheckReport::default();
        let analysis = check_epoch(
            &figure4_epoch(),
            EpochId(0),
            &Thresholds::default(),
            &sig(),
            &CriticalParams::default(),
            42,
            &mut report,
        );
        assert!(
            report.passed(),
            "violations on a clean epoch: {}",
            report
                .violations
                .iter()
                .map(Violation::to_string)
                .collect::<Vec<_>>()
                .join("; ")
        );
        assert!(report.oracles_run > 10);
        assert!(!analysis.metric(Metric::JoinFailure).critical.is_empty());
    }

    #[test]
    fn tampered_attribution_is_caught() {
        let data = figure4_epoch();
        let ctx = AnalysisContext::compute(EpochId(0), &data, &Thresholds::default(), &sig());
        let mut analysis = EpochAnalysis::from_context(&ctx, &CriticalParams::default());
        let m = Metric::JoinFailure;
        analysis.metrics[m.index()].critical.problems_attributed += 10.0;
        let mut report = CheckReport::default();
        check_attribution(&ctx, analysis.metric(m), m, &mut report);
        assert!(report
            .violations
            .iter()
            .any(|v| v.oracle == "attribution-conservation"));
    }

    #[test]
    fn tampered_critical_set_is_caught() {
        let data = figure4_epoch();
        let ctx = AnalysisContext::compute(EpochId(0), &data, &Thresholds::default(), &sig());
        let mut analysis = EpochAnalysis::from_context(&ctx, &CriticalParams::default());
        let m = Metric::JoinFailure;
        // Plant ASN1 as "critical": it is a problem cluster, but its
        // healthy (ASN1, CDN2) branch violates the strict descendant
        // condition — the identification pass rightly rejected it.
        let asn1 = ClusterKey::of_single(AttrKey::Asn, 1);
        analysis.metrics[m.index()]
            .critical
            .clusters
            .insert(asn1, Default::default());
        let mut report = CheckReport::default();
        check_critical_set(
            &ctx,
            analysis.metric(m),
            m,
            &CriticalParams::strict(),
            &mut report,
        );
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.oracle == "critical-descendant-condition"),
            "expected a descendant-condition violation, got: {:?}",
            report.violations
        );
    }

    #[test]
    fn tampered_problem_set_is_caught() {
        let data = figure4_epoch();
        let ctx = AnalysisContext::compute(EpochId(0), &data, &Thresholds::default(), &sig());
        let mut tampered = ctx.clone();
        // Drop one genuine problem cluster: completeness must notice.
        let m = Metric::JoinFailure;
        let key = *tampered.problems[m.index()]
            .clusters
            .keys()
            .next()
            .expect("figure-4 epoch has problem clusters");
        tampered.problems[m.index()].clusters.remove(&key);
        let mut report = CheckReport::default();
        check_problem_set(&tampered, m, &mut report);
        assert!(report
            .violations
            .iter()
            .any(|v| v.oracle == "problem-completeness"));
    }

    #[test]
    fn projection_oracle_matches_on_random_masks() {
        // Many distinct leaves so sampled masks hit non-trivial runs.
        let mut d = EpochData::default();
        for asn in 0..12u32 {
            for cdn in 0..4u32 {
                for site in 0..3u32 {
                    push(
                        &mut d,
                        asn,
                        cdn,
                        site,
                        40 + u64::from(asn * cdn),
                        asn as u64 % 5,
                    );
                }
            }
        }
        let mut report = CheckReport::default();
        let ctx = AnalysisContext::compute(EpochId(2), &d, &Thresholds::default(), &sig());
        for seed in [1u64, 7, 99] {
            check_cube(&ctx.cube, &sig(), seed, &mut report);
        }
        assert!(
            report.passed(),
            "cube oracles disagreed: {:?}",
            report.violations
        );
    }
}
