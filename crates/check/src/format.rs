//! VQF round-trip oracles: the binary columnar format must be a lossless,
//! tamper-evident carrier for the analysis pipeline.
//!
//! * `format-roundtrip` — a dataset written as VQF and read back must be
//!   **bit-identical**: same 64-bit dataset fingerprint (packed attribute
//!   keys and metric bit patterns), same metadata, same epoch layout, and
//!   per-epoch analyses that agree with the uninterrupted run down to the
//!   f64 bit patterns of every ratio and attribution share. Analysis of a
//!   converted trace must never differ from analysis of the original.
//! * `format-backend-equivalence` — the zero-copy mmap read path and the
//!   safe positioned-read fallback must decode identical datasets; the
//!   choice of backend is an implementation detail, never a result.
//! * `format-rejects-corruption` — flipping any single byte of a
//!   committed file must be rejected with an error (every byte is under
//!   some checksum's coverage), never silently misparsed into a dataset.
//! * `format-rejects-truncation` — a prefix of a committed file (a torn
//!   copy; `AtomicFile` prevents torn *writes*) must be rejected.
//!
//! The oracles drive the real writer/reader against a scratch file under
//! the system temp dir (removed afterwards); harness I/O failures are
//! reported as `format-io` rather than silently passing.

use crate::CheckReport;
use std::fs;
use std::path::{Path, PathBuf};
use vqlens_cluster::analyze::EpochAnalysis;
use vqlens_cluster::critical::CriticalParams;
use vqlens_cluster::problem::SignificanceParams;
use vqlens_format::{mmap::MMAP_SUPPORTED, read_vqf, write_vqf, Backend, VqfFile};
use vqlens_model::dataset::Dataset;
use vqlens_model::metric::{Metric, Thresholds};
use vqlens_resilience::fingerprint_dataset;

/// Run the VQF format oracles over a dataset and its uninterrupted
/// per-epoch analyses. Does nothing for empty datasets (nothing to carry).
pub fn check_format(
    dataset: &Dataset,
    thresholds: &Thresholds,
    sig: &SignificanceParams,
    params: &CriticalParams,
    analyses: &[EpochAnalysis],
    seed: u64,
    report: &mut CheckReport,
) {
    if dataset.num_sessions() == 0 {
        return;
    }
    let path = scratch_file(seed);
    let result = run_oracles(
        dataset, thresholds, sig, params, analyses, &path, seed, report,
    );
    let _ = fs::remove_file(&path);
    if let Err(e) = result {
        report.violate(
            "format-io",
            None,
            None,
            format!("VQF harness I/O failed: {e}"),
        );
    }
}

fn scratch_file(seed: u64) -> PathBuf {
    std::env::temp_dir().join(format!(
        "vqlens-check-format-{}-{seed:016x}.vqf",
        std::process::id()
    ))
}

#[allow(clippy::too_many_arguments)]
fn run_oracles(
    dataset: &Dataset,
    thresholds: &Thresholds,
    sig: &SignificanceParams,
    params: &CriticalParams,
    analyses: &[EpochAnalysis],
    path: &Path,
    seed: u64,
    report: &mut CheckReport,
) -> Result<(), vqlens_format::VqfError> {
    write_vqf(dataset, path)?;

    // format-roundtrip: bit-identical data, metadata, and analyses.
    report.ran(1);
    let back = read_vqf(path)?;
    if fingerprint_dataset(&back) != fingerprint_dataset(dataset) {
        report.violate(
            "format-roundtrip",
            None,
            None,
            format!(
                "round-tripped fingerprint {:#018x} differs from original {:#018x}",
                fingerprint_dataset(&back),
                fingerprint_dataset(dataset)
            ),
        );
    }
    if back.meta != dataset.meta || back.num_epochs() != dataset.num_epochs() {
        report.violate(
            "format-roundtrip",
            None,
            None,
            format!(
                "round trip changed shape: {} epochs / meta {:?} vs {} / {:?}",
                back.num_epochs(),
                back.meta,
                dataset.num_epochs(),
                dataset.meta
            ),
        );
    }
    for original in analyses {
        let id = original.epoch;
        let again = EpochAnalysis::compute(id, back.epoch(id), thresholds, sig, params);
        report.ran(1);
        if again.total_sessions != original.total_sessions {
            report.violate(
                "format-roundtrip",
                Some(id),
                None,
                format!(
                    "analysis of round-tripped data saw {} sessions, original {}",
                    again.total_sessions, original.total_sessions
                ),
            );
        }
        for m in Metric::ALL {
            let a = again.metric(m);
            let o = original.metric(m);
            if a.problems.global_ratio.to_bits() != o.problems.global_ratio.to_bits()
                || a.problems.clusters != o.problems.clusters
                || !crate::incremental::critical_equal(a, o)
            {
                report.violate(
                    "format-roundtrip",
                    Some(id),
                    Some(m),
                    format!(
                        "analysis diverged after round trip ({} problem / {} critical clusters \
                         vs {} / {})",
                        a.problems.clusters.len(),
                        a.critical.clusters.len(),
                        o.problems.clusters.len(),
                        o.critical.clusters.len()
                    ),
                );
            }
        }
    }

    // format-backend-equivalence: pread and (where supported) mmap decode
    // the same bytes into the same dataset.
    report.ran(1);
    let pread = VqfFile::open_with(path, Backend::Pread)?.read_dataset()?;
    if fingerprint_dataset(&pread) != fingerprint_dataset(&back) {
        report.violate(
            "format-backend-equivalence",
            None,
            None,
            "pread backend decoded a different dataset than the default backend".to_owned(),
        );
    }
    if MMAP_SUPPORTED {
        report.ran(1);
        let mapped = VqfFile::open_with(path, Backend::Mmap)?.read_dataset()?;
        if fingerprint_dataset(&mapped) != fingerprint_dataset(&pread) {
            report.violate(
                "format-backend-equivalence",
                None,
                None,
                "mmap backend decoded a different dataset than pread".to_owned(),
            );
        }
    }

    // format-rejects-corruption: no single flipped byte may survive. The
    // flip positions are seed-derived so fuzz iterations spray different
    // regions (header, dicts, chunks, footer, trailer) across runs.
    let bytes = fs::read(path).map_err(vqlens_format::VqfError::Io)?;
    let mut rng = seed | 1;
    for _ in 0..8 {
        rng = rng
            .wrapping_mul(0x5851_f42d_4c95_7f2d)
            .wrapping_add(0x14057_b7e);
        let pos = (rng >> 16) as usize % bytes.len();
        let mut damaged = bytes.clone();
        damaged[pos] ^= 0x01;
        fs::write(path, &damaged).map_err(vqlens_format::VqfError::Io)?;
        report.ran(1);
        if let Ok(parsed) = read_vqf(path) {
            report.violate(
                "format-rejects-corruption",
                None,
                None,
                format!(
                    "byte {pos} of {} flipped yet the file parsed ({} sessions)",
                    bytes.len(),
                    parsed.num_sessions()
                ),
            );
        }
    }

    // format-rejects-truncation: every proper prefix is a torn copy.
    for denom in [2u64, 3, 7] {
        rng = rng
            .wrapping_mul(0x5851_f42d_4c95_7f2d)
            .wrapping_add(0x14057_b7e);
        let cut = 1 + (rng >> 16) as usize % (bytes.len() - 1) / denom as usize;
        fs::write(path, &bytes[..cut]).map_err(vqlens_format::VqfError::Io)?;
        report.ran(1);
        if let Ok(parsed) = read_vqf(path) {
            report.violate(
                "format-rejects-truncation",
                None,
                None,
                format!(
                    "file truncated to {cut} of {} bytes yet parsed ({} sessions)",
                    bytes.len(),
                    parsed.num_sessions()
                ),
            );
        }
    }
    // The sharpest torn copy: everything but the last byte.
    fs::write(path, &bytes[..bytes.len() - 1]).map_err(vqlens_format::VqfError::Io)?;
    report.ran(1);
    if read_vqf(path).is_ok() {
        report.violate(
            "format-rejects-truncation",
            None,
            None,
            "file missing only its final byte still parsed".to_owned(),
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqlens_cluster::critical::CriticalParams;
    use vqlens_synth::scenario::{generate, Scenario};

    #[test]
    fn format_oracles_pass_on_a_smoke_trace() {
        let output = generate(&Scenario::smoke());
        let thresholds = Thresholds::default();
        let sig = SignificanceParams::scaled_to(2_000);
        let params = CriticalParams::default();
        let analyses: Vec<EpochAnalysis> = (0..output.dataset.num_epochs())
            .map(vqlens_model::epoch::EpochId)
            .filter(|id| !output.dataset.epoch(*id).is_empty())
            .map(|id| {
                EpochAnalysis::compute(id, output.dataset.epoch(id), &thresholds, &sig, &params)
            })
            .collect();
        let mut report = CheckReport::default();
        check_format(
            &output.dataset,
            &thresholds,
            &sig,
            &params,
            &analyses,
            0xf0a7_11e5,
            &mut report,
        );
        assert!(report.oracles_run > 10, "oracles actually ran");
        assert!(report.passed(), "violations: {}", report);
    }

    #[test]
    fn format_oracle_catches_a_tampered_analysis() {
        let output = generate(&Scenario::smoke());
        let thresholds = Thresholds::default();
        let sig = SignificanceParams::scaled_to(2_000);
        let params = CriticalParams::default();
        let id = vqlens_model::epoch::EpochId(0);
        let mut analyses = vec![EpochAnalysis::compute(
            id,
            output.dataset.epoch(id),
            &thresholds,
            &sig,
            &params,
        )];
        analyses[0].total_sessions += 1;
        let mut report = CheckReport::default();
        check_format(
            &output.dataset,
            &thresholds,
            &sig,
            &params,
            &analyses,
            0xf0a7_11e6,
            &mut report,
        );
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.oracle == "format-roundtrip"),
            "tampered session count must trip the round-trip oracle"
        );
    }
}
