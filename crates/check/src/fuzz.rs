//! Seeded fuzz driver: scenario variants × fault operators × every oracle.
//!
//! Each iteration draws a randomized variant of [`Scenario::smoke`],
//! generates a trace, round-trips it through CSV (optionally corrupted by
//! one [`vqlens_synth::faults`] operator, ingested leniently — the
//! robustness contract from the ingestion work), and runs the full oracle
//! suite on whatever survived. Finally the trace is gap-punched and the
//! cross-epoch oracles re-run, generalizing the monitor/persistence
//! duality over irregular traces. Each iteration also samples one
//! ground-truth scenario family at a randomized seed and holds its
//! attribution score to loose structural bounds (the committed floors are
//! enforced separately, at their pinned seed, by the
//! [`crate::scenario`] oracle).
//!
//! Everything derives from one master seed, so a CI failure reproduces
//! locally with `vqlens check --fuzz N --seed S`.

use crate::{trace, CheckReport};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::io::BufReader;
use vqlens_cluster::critical::CriticalParams;
use vqlens_cluster::problem::SignificanceParams;
use vqlens_model::csv::{read_csv_opts, write_csv, ReadOptions};
use vqlens_model::metric::Thresholds;
use vqlens_synth::families::ScenarioFamily;
use vqlens_synth::{generate, FaultKind, FaultPlan, Scenario};

/// Crash-point boundaries explored per fuzz iteration (the full sweep of
/// every boundary is `vqlens check`'s job; here each iteration samples a
/// different seeded slice of the schedule).
const CRASH_POINTS_PER_ITERATION: usize = 6;

/// Fuzz-loop parameters.
#[derive(Debug, Clone, Copy)]
pub struct FuzzConfig {
    /// Number of independent scenario draws.
    pub iterations: u32,
    /// Master seed; iteration `i` derives its own stream from it.
    pub seed: u64,
}

/// Run the fuzz loop and collect every violation into one report.
pub fn fuzz(config: &FuzzConfig) -> CheckReport {
    let mut report = CheckReport::default();
    for i in 0..config.iterations {
        let iter_seed = config.seed ^ u64::from(i).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        run_iteration(i, iter_seed, &mut report);
    }
    report
}

/// Draw a small randomized variant of the smoke scenario.
fn draw_scenario(i: u32, rng: &mut SmallRng) -> Scenario {
    let mut s = Scenario::smoke();
    s.name = format!("fuzz-{i}");
    s.world.n_sites = rng.gen_range(10..30);
    s.world.n_cdns = rng.gen_range(3..6);
    s.world.n_asns = rng.gen_range(20..60);
    s.world.seed = rng.gen();
    s.n_events = rng.gen_range(2..8);
    s.arrivals.sessions_per_epoch = rng.gen_range(300.0..1200.0);
    s.epochs = rng.gen_range(4..10);
    s.seed = rng.gen();
    s
}

fn run_iteration(i: u32, seed: u64, report: &mut CheckReport) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let scenario = draw_scenario(i, &mut rng);
    let output = generate(&scenario);

    let mut csv = Vec::new();
    write_csv(&output.dataset, &mut csv).expect("writing to a Vec cannot fail");
    let mut csv = String::from_utf8(csv).expect("generated CSV is UTF-8");

    // Half the iterations corrupt the CSV with one fault operator before
    // ingestion; lenient ingestion must still produce a dataset (the
    // fault-ingest-robustness oracle), and every surviving session must
    // still satisfy the paper invariants.
    if rng.gen_bool(0.5) {
        let kind = FaultKind::ALL[rng.gen_range(0..FaultKind::ALL.len())];
        let plan = FaultPlan::new(kind, rng.gen());
        csv = vqlens_synth::inject(&csv, &plan).0;
    }

    report.ran(1);
    let dataset = match read_csv_opts(
        BufReader::new(csv.as_bytes()),
        &ReadOptions::lenient(1.0),
        None,
    ) {
        Ok((dataset, _ingest)) => dataset,
        Err(err) => {
            report.violate(
                "fault-ingest-robustness",
                None,
                None,
                format!("lenient ingestion failed on {}: {err}", scenario.name),
            );
            return;
        }
    };

    let sig = SignificanceParams::scaled_to(scenario.arrivals.sessions_per_epoch as u64);
    // Crash-point exploration is bounded per iteration (the sampled
    // boundaries derive from the iteration seed, not the main rng stream,
    // so scenario draws stay pinned); `vqlens check` without --fuzz still
    // kills at every boundary.
    let analyses = crate::check_dataset_with_crash_budget(
        &dataset,
        &Thresholds::default(),
        &sig,
        &CriticalParams::default(),
        rng.gen(),
        Some(CRASH_POINTS_PER_ITERATION),
        report,
    );

    // Gap-punch the trace (keep each epoch with p = 0.7) and re-run the
    // cross-epoch oracles: the duality and recurrence invariants must
    // survive arbitrary missing epochs.
    if analyses.len() > 2 {
        let gapped: Vec<_> = analyses.into_iter().filter(|_| rng.gen_bool(0.7)).collect();
        trace::check_trace(&gapped, report);
    }

    check_family_sample(seed, report);
}

/// Score one randomly drawn scenario family at a randomized seed and hold
/// it to loose structural bounds (`fuzz-family-attribution`).
///
/// The committed [`vqlens_score::FAMILY_FLOORS`] are pinned to one seed;
/// this samples the same families across the fuzz loop's seed space, so a
/// regression that only the floor seed happens to survive still surfaces.
/// The bounds sit well below the committed floors — cross-seed variance in
/// event visibility is legitimate — but far above chance, where only a
/// broken attribution path can land.
///
/// Deliberately derives its rng from the iteration seed alone (not the
/// iteration's main `rng` stream): appending this check — or registering
/// new families — must not perturb which scenario variants, faults, or
/// gap patterns earlier fuzz seeds reproduce.
fn check_family_sample(seed: u64, report: &mut CheckReport) {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5ca1_ab1e_0f5c_0e5d);
    let family = ScenarioFamily::ALL[rng.gen_range(0..ScenarioFamily::COUNT)];
    let family_seed: u64 = rng.gen();
    let result = vqlens_score::score_family(family, family_seed);
    report.ran(1);
    if result.score.truth_instances == 0 {
        report.violate(
            "fuzz-family-attribution",
            None,
            None,
            format!(
                "family {} @ seed {family_seed:#x}: no scoreable (event, epoch) instances",
                family.name()
            ),
        );
        return;
    }
    let s = &result.score;
    let bounds = [
        (
            s.recall() >= 0.35,
            format!("recall {:.3} < 0.35", s.recall()),
        ),
        (
            s.precision() >= 0.15,
            format!("precision {:.3} < 0.15", s.precision()),
        ),
        (
            s.attribution_mass() >= 0.55,
            format!("attribution mass {:.3} < 0.55", s.attribution_mass()),
        ),
        (
            s.mean_depth_delta() <= 1.5,
            format!("mean depth delta {:.3} > 1.5", s.mean_depth_delta()),
        ),
    ];
    for (ok, detail) in bounds {
        if !ok {
            report.violate(
                "fuzz-family-attribution",
                None,
                None,
                format!("family {} @ seed {family_seed:#x}: {detail}", family.name()),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_fuzz_run_is_clean() {
        let report = fuzz(&FuzzConfig {
            iterations: 2,
            seed: 0x5eed_f022,
        });
        assert!(report.passed(), "fuzz violations: {:?}", report.violations);
        assert!(report.oracles_run > 20);
    }

    /// Seed-stability regression (satellite of the scenario-family work):
    /// the fuzz loop's scenario sampling must draw byte-identical variants
    /// after new scenario families or extra sampling stages are appended.
    /// The family sampler runs on a forked rng precisely so these pinned
    /// values never move; if this test fails, a change consumed draws from
    /// the iteration's main stream and every historical fuzz seed now
    /// reproduces a different scenario.
    #[test]
    fn draw_scenario_stream_is_pinned() {
        let mut rng = SmallRng::seed_from_u64(0x5eed_f022);
        let s = draw_scenario(7, &mut rng);
        assert_eq!(s.name, "fuzz-7");
        assert_eq!(s.world.n_sites, 13);
        assert_eq!(s.world.n_cdns, 4);
        assert_eq!(s.world.n_asns, 55);
        assert_eq!(s.world.seed, 0xfa8e_d112_5307_5e15);
        assert_eq!(s.n_events, 5);
        assert!((s.arrivals.sessions_per_epoch - 649.085_288_113_998).abs() < 1e-9);
        assert_eq!(s.epochs, 4);
        assert_eq!(s.seed, 0x77d5_fa90_9354_c36d);
    }

    #[test]
    fn fuzz_is_deterministic_in_its_seed() {
        let cfg = FuzzConfig {
            iterations: 1,
            seed: 42,
        };
        let a = fuzz(&cfg);
        let b = fuzz(&cfg);
        assert_eq!(a.oracles_run, b.oracles_run);
        assert_eq!(a.violations.len(), b.violations.len());
    }
}
