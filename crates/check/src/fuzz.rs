//! Seeded fuzz driver: scenario variants × fault operators × every oracle.
//!
//! Each iteration draws a randomized variant of [`Scenario::smoke`],
//! generates a trace, round-trips it through CSV (optionally corrupted by
//! one [`vqlens_synth::faults`] operator, ingested leniently — the
//! robustness contract from the ingestion work), and runs the full oracle
//! suite on whatever survived. Finally the trace is gap-punched and the
//! cross-epoch oracles re-run, generalizing the monitor/persistence
//! duality over irregular traces.
//!
//! Everything derives from one master seed, so a CI failure reproduces
//! locally with `vqlens check --fuzz N --seed S`.

use crate::{trace, CheckReport};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::io::BufReader;
use vqlens_cluster::critical::CriticalParams;
use vqlens_cluster::problem::SignificanceParams;
use vqlens_model::csv::{read_csv_opts, write_csv, ReadOptions};
use vqlens_model::metric::Thresholds;
use vqlens_synth::{generate, FaultKind, FaultPlan, Scenario};

/// Fuzz-loop parameters.
#[derive(Debug, Clone, Copy)]
pub struct FuzzConfig {
    /// Number of independent scenario draws.
    pub iterations: u32,
    /// Master seed; iteration `i` derives its own stream from it.
    pub seed: u64,
}

/// Run the fuzz loop and collect every violation into one report.
pub fn fuzz(config: &FuzzConfig) -> CheckReport {
    let mut report = CheckReport::default();
    for i in 0..config.iterations {
        let iter_seed = config.seed ^ u64::from(i).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        run_iteration(i, iter_seed, &mut report);
    }
    report
}

/// Draw a small randomized variant of the smoke scenario.
fn draw_scenario(i: u32, rng: &mut SmallRng) -> Scenario {
    let mut s = Scenario::smoke();
    s.name = format!("fuzz-{i}");
    s.world.n_sites = rng.gen_range(10..30);
    s.world.n_cdns = rng.gen_range(3..6);
    s.world.n_asns = rng.gen_range(20..60);
    s.world.seed = rng.gen();
    s.n_events = rng.gen_range(2..8);
    s.arrivals.sessions_per_epoch = rng.gen_range(300.0..1200.0);
    s.epochs = rng.gen_range(4..10);
    s.seed = rng.gen();
    s
}

fn run_iteration(i: u32, seed: u64, report: &mut CheckReport) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let scenario = draw_scenario(i, &mut rng);
    let output = generate(&scenario);

    let mut csv = Vec::new();
    write_csv(&output.dataset, &mut csv).expect("writing to a Vec cannot fail");
    let mut csv = String::from_utf8(csv).expect("generated CSV is UTF-8");

    // Half the iterations corrupt the CSV with one fault operator before
    // ingestion; lenient ingestion must still produce a dataset (the
    // fault-ingest-robustness oracle), and every surviving session must
    // still satisfy the paper invariants.
    if rng.gen_bool(0.5) {
        let kind = FaultKind::ALL[rng.gen_range(0..FaultKind::ALL.len())];
        let plan = FaultPlan::new(kind, rng.gen());
        csv = vqlens_synth::inject(&csv, &plan).0;
    }

    report.ran(1);
    let dataset = match read_csv_opts(
        BufReader::new(csv.as_bytes()),
        &ReadOptions::lenient(1.0),
        None,
    ) {
        Ok((dataset, _ingest)) => dataset,
        Err(err) => {
            report.violate(
                "fault-ingest-robustness",
                None,
                None,
                format!("lenient ingestion failed on {}: {err}", scenario.name),
            );
            return;
        }
    };

    let sig = SignificanceParams::scaled_to(scenario.arrivals.sessions_per_epoch as u64);
    let analyses = crate::check_dataset(
        &dataset,
        &Thresholds::default(),
        &sig,
        &CriticalParams::default(),
        rng.gen(),
        report,
    );

    // Gap-punch the trace (keep each epoch with p = 0.7) and re-run the
    // cross-epoch oracles: the duality and recurrence invariants must
    // survive arbitrary missing epochs.
    if analyses.len() > 2 {
        let gapped: Vec<_> = analyses.into_iter().filter(|_| rng.gen_bool(0.7)).collect();
        trace::check_trace(&gapped, report);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_fuzz_run_is_clean() {
        let report = fuzz(&FuzzConfig {
            iterations: 2,
            seed: 0x5eed_f022,
        });
        assert!(report.passed(), "fuzz violations: {:?}", report.violations);
        assert!(report.oracles_run > 20);
    }

    #[test]
    fn fuzz_is_deterministic_in_its_seed() {
        let cfg = FuzzConfig {
            iterations: 1,
            seed: 42,
        };
        let a = fuzz(&cfg);
        let b = fuzz(&cfg);
        assert_eq!(a.oracles_run, b.oracles_run);
        assert_eq!(a.violations.len(), b.violations.len());
    }
}
