//! WAL replay oracles: a server killed at any instant and restarted from
//! its write-ahead log must be indistinguishable from one that never
//! died.
//!
//! [`crate::resume`] checks the *checkpoint* durability contract; this
//! module checks the *ingestion* one ([`vqlens_resilience::wal`], used by
//! `vqlens-serve`):
//!
//! * `wal-roundtrip` — every appended record survives the
//!   append → reopen cycle byte-for-byte, in order, across segment
//!   rotations.
//! * `wal-torn-tail` — truncating the final segment mid-frame (a crash
//!   during an un-acknowledged append) loses only the torn tail: replay
//!   returns the exact acknowledged prefix, and the healed log accepts
//!   further appends that survive the next reopen.
//! * `wal-replay-equivalence` — a dataset serialized into the WAL,
//!   replayed, and re-ingested produces exactly the uninterrupted
//!   per-epoch analyses, compared as canonical JSON values.
//!
//! The oracles drive the real [`Wal`] against a scratch directory under
//! the system temp dir (removed afterwards); harness I/O failures are
//! reported as `wal-io` rather than silently passing.

use crate::CheckReport;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use vqlens_cluster::analyze::EpochAnalysis;
use vqlens_cluster::critical::CriticalParams;
use vqlens_cluster::problem::SignificanceParams;
use vqlens_model::csv::{read_csv, write_csv};
use vqlens_model::dataset::Dataset;
use vqlens_model::metric::Thresholds;
use vqlens_resilience::{Wal, WalOptions};

/// Run the WAL oracles over a dataset and its uninterrupted per-epoch
/// analyses. Does nothing for empty datasets (no records to log).
pub fn check_wal(
    dataset: &Dataset,
    thresholds: &Thresholds,
    sig: &SignificanceParams,
    params: &CriticalParams,
    analyses: &[EpochAnalysis],
    seed: u64,
    report: &mut CheckReport,
) {
    if dataset.num_sessions() == 0 {
        return;
    }
    let dir = scratch_dir(seed);
    let result = run_oracles(dataset, thresholds, sig, params, analyses, &dir, report);
    let _ = fs::remove_dir_all(&dir);
    if let Err(e) = result {
        report.violate("wal-io", None, None, format!("WAL harness I/O failed: {e}"));
    }
}

fn scratch_dir(seed: u64) -> PathBuf {
    std::env::temp_dir().join(format!(
        "vqlens-check-wal-{}-{seed:016x}",
        std::process::id()
    ))
}

/// The dataset's CSV data lines — the exact payloads a live server would
/// acknowledge, in a deterministic order.
fn csv_lines(dataset: &Dataset) -> Result<Vec<String>, io::Error> {
    let mut buf = Vec::new();
    write_csv(dataset, &mut buf)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let text = String::from_utf8(buf)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    Ok(text.lines().skip(1).map(str::to_owned).collect())
}

fn run_oracles(
    dataset: &Dataset,
    thresholds: &Thresholds,
    sig: &SignificanceParams,
    params: &CriticalParams,
    analyses: &[EpochAnalysis],
    dir: &Path,
    report: &mut CheckReport,
) -> io::Result<()> {
    let lines = csv_lines(dataset)?;
    // A small segment size forces rotation even on smoke-sized traces,
    // so the multi-segment replay path is always exercised.
    let opts = WalOptions {
        segment_bytes: 4096,
        ..WalOptions::default()
    };

    // wal-roundtrip: append everything, reopen, demand byte-identical
    // payloads in order.
    let _ = fs::remove_dir_all(dir);
    fs::create_dir_all(dir)?;
    {
        let (mut wal, replay) = Wal::open(dir, opts.clone())?;
        report.ran(1);
        if !replay.records.is_empty() {
            report.violate(
                "wal-roundtrip",
                None,
                None,
                format!("fresh WAL replayed {} records", replay.records.len()),
            );
        }
        wal.append_batch(lines.iter().map(String::as_bytes))?;
    }
    let (_, replay) = Wal::open(dir, opts.clone())?;
    report.ran(1);
    let replayed_ok = replay.records.len() == lines.len()
        && replay
            .records
            .iter()
            .zip(&lines)
            .all(|(record, line)| record.as_slice() == line.as_bytes());
    if !replayed_ok {
        report.violate(
            "wal-roundtrip",
            None,
            None,
            format!(
                "appended {} records across segments, replay returned {} (or differing bytes)",
                lines.len(),
                replay.records.len()
            ),
        );
    }

    // wal-torn-tail: shear bytes off the last segment — a crash inside an
    // un-acknowledged append — and demand an exact-prefix replay plus a
    // writable, durable log afterwards.
    for shear in [1u64, 7] {
        let Some((last_segment, len)) = last_segment(dir)? else {
            break;
        };
        if len <= shear {
            continue;
        }
        let file = fs::OpenOptions::new().write(true).open(&last_segment)?;
        file.set_len(len - shear)?;
        file.sync_all()?;
        drop(file);

        let (mut wal, torn) = Wal::open(dir, opts.clone())?;
        report.ran(1);
        let prefix_ok = torn.records.len() <= lines.len()
            && torn
                .records
                .iter()
                .zip(&lines)
                .all(|(record, line)| record.as_slice() == line.as_bytes());
        if !prefix_ok {
            report.violate(
                "wal-torn-tail",
                None,
                None,
                format!(
                    "after shearing {shear} bytes, replay returned {} records that are not an exact prefix of the {} appended",
                    torn.records.len(),
                    lines.len()
                ),
            );
        }
        // The healed log must keep working: append once more and demand
        // prefix + new record on the next reopen.
        wal.append(b"post-crash-record")?;
        let prefix_len = torn.records.len();
        drop(wal);
        let (_, healed) = Wal::open(dir, opts.clone())?;
        report.ran(1);
        if healed.records.len() != prefix_len + 1
            || healed.records.last().map(Vec::as_slice) != Some(b"post-crash-record".as_slice())
        {
            report.violate(
                "wal-torn-tail",
                None,
                None,
                format!(
                    "healed WAL with {prefix_len}-record prefix replayed {} records after one more append",
                    healed.records.len()
                ),
            );
        }
    }

    // wal-replay-equivalence: rebuild a dataset from a freshly written
    // log's replay and demand the uninterrupted analyses, exactly.
    let _ = fs::remove_dir_all(dir);
    fs::create_dir_all(dir)?;
    {
        let (mut wal, _) = Wal::open(dir, opts.clone())?;
        wal.append_batch(lines.iter().map(String::as_bytes))?;
    }
    let (_, replay) = Wal::open(dir, opts)?;
    let mut csv = String::from(vqlens_model::csv::CSV_HEADER);
    csv.push('\n');
    for record in &replay.records {
        csv.push_str(std::str::from_utf8(record).unwrap_or(""));
        csv.push('\n');
    }
    let rebuilt = read_csv(csv.as_bytes())
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    report.ran(1);
    for original in analyses {
        let id = original.epoch;
        let recomputed = EpochAnalysis::compute(id, rebuilt.epoch(id), thresholds, sig, params);
        if !json_equal(&recomputed, original) {
            report.violate(
                "wal-replay-equivalence",
                Some(id),
                None,
                "analysis of the WAL-replayed dataset differs from the uninterrupted run"
                    .to_owned(),
            );
        }
    }
    Ok(())
}

/// The highest-sequence segment file and its length.
fn last_segment(dir: &Path) -> io::Result<Option<(PathBuf, u64)>> {
    let mut segments: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".log"))
        })
        .collect();
    segments.sort();
    match segments.pop() {
        Some(path) => {
            let len = fs::metadata(&path)?.len();
            Ok(Some((path, len)))
        }
        None => Ok(None),
    }
}

fn json_equal(a: &EpochAnalysis, b: &EpochAnalysis) -> bool {
    match (serde_json::to_value(a), serde_json::to_value(b)) {
        (Ok(x), Ok(y)) => x == y,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqlens_model::epoch::EpochId;
    use vqlens_synth::scenario::{generate, Scenario};

    #[test]
    fn wal_oracles_pass_on_a_smoke_trace() {
        let output = generate(&Scenario::smoke());
        let thresholds = Thresholds::default();
        let sig = SignificanceParams::scaled_to(
            output.dataset.num_sessions() as u64 / u64::from(output.dataset.num_epochs().max(1)),
        );
        let params = CriticalParams::default();
        let analyses: Vec<EpochAnalysis> = (0..output.dataset.num_epochs())
            .map(EpochId)
            .filter(|id| !output.dataset.epoch(*id).is_empty())
            .map(|id| {
                EpochAnalysis::compute(id, output.dataset.epoch(id), &thresholds, &sig, &params)
            })
            .collect();
        let mut report = CheckReport::default();
        check_wal(
            &output.dataset,
            &thresholds,
            &sig,
            &params,
            &analyses,
            0xA11CE,
            &mut report,
        );
        assert!(report.passed(), "WAL oracles violated:\n{report}");
        assert!(report.oracles_run >= 4);
    }
}
