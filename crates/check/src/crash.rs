//! Crash-point consistency oracles: every durable writer, killed at
//! *every* durable-op boundary, must recover to a state indistinguishable
//! from an uninterrupted run.
//!
//! Where [`crate::resume`] and [`crate::wal`] interrupt a run at a few
//! hand-picked points (between epochs, mid-frame), this family is
//! exhaustive: it first runs a fixed durable workload — WAL appends with
//! forced rotation, checkpoint saves, a VQF export, dead-letter appends —
//! under an [`IoPlan::Record`] script to capture the durable-op schedule,
//! then replays the same workload once per op boundary with
//! [`IoPlan::KillAt`] and checks the recovery invariants after each
//! simulated death:
//!
//! * `crash-wal-prefix` — replay after the kill returns an exact ordered
//!   prefix of the appended lines, at least as long as the acknowledged
//!   count: no acknowledged record is lost, no record is invented,
//!   reordered, or corrupted.
//! * `crash-checkpoint-torn` — the checkpoint store reopens cleanly; every
//!   checkpoint acknowledged before the kill is resumed with a
//!   JSON-identical analysis, and nothing torn is ever resumed.
//! * `crash-vqf-atomic` — the VQF file either does not exist or loads
//!   completely with the reference fingerprint; a commit acknowledged
//!   before the kill implies the file exists. Never a torn file.
//! * `crash-deadletter-prefix` — the dead-letter sink's recovered bytes
//!   are an exact prefix of the uninterrupted sink's bytes (appends may
//!   tear, but only at the tail).
//! * `crash-recovery-equivalence` — after recovery *completes* the
//!   workload (appends the missing lines, re-saves the missing
//!   checkpoints, re-exports the VQF file), the final state is
//!   bit-identical to the uninterrupted run's: same WAL replay, same
//!   checkpoint set, same VQF fingerprint.
//!
//! The fault model is **process death** (see [`vqlens_resilience::ioenv`]):
//! buffered writes that completed remain visible, so the scripts elide
//! real fsyncs — which is what makes exploring every boundary affordable.
//! Each explored boundary bumps
//! [`vqlens_obs::Counter::CrashPointsExplored`]; harness failures are
//! reported as `crash-io` rather than silently passing.

use crate::CheckReport;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use vqlens_cluster::analyze::EpochAnalysis;
use vqlens_format::{read_vqf, write_vqf};
use vqlens_model::csv::{read_csv, write_csv, CSV_HEADER};
use vqlens_model::dataset::Dataset;
use vqlens_obs as obs;
use vqlens_resilience::ioenv::{self, install, IoPlan, IoScript};
use vqlens_resilience::{
    fingerprint_dataset, CheckpointStore, EpochCheckpoint, EpochStatus, Manifest, RetryPolicy, Wal,
    WalOptions,
};

/// Lines fed to the workload: enough to force many WAL batches and
/// rotations (≥ 100 crash points on any non-trivial dataset) while
/// keeping the per-boundary replay cheap.
const MAX_LINES: usize = 160;
/// Lines per acknowledged WAL batch.
const BATCH: usize = 8;
/// Checkpoints saved by the workload.
const MAX_CHECKPOINTS: usize = 3;
/// Lines appended to the dead-letter sink.
const DEAD_LINES: usize = 8;
/// Small segment budget so nearly every batch rotates — the
/// create/magic/fsync-dir path is crossed by many crash points.
const SEGMENT_BYTES: u64 = 256;

/// Run the crash-point oracles over a dataset and its uninterrupted
/// per-epoch analyses, exploring **every** durable-op boundary of the
/// workload. Does nothing for empty datasets.
pub fn check_crash(
    dataset: &Dataset,
    analyses: &[EpochAnalysis],
    seed: u64,
    report: &mut CheckReport,
) {
    explore(dataset, analyses, seed, None, true, report);
}

/// Sampled variant for the fuzz loop: explore at most `points` crash
/// points, chosen deterministically from `seed` (evenly spread plus a
/// seeded offset, so different iterations cover different boundaries).
pub fn check_crash_sampled(
    dataset: &Dataset,
    analyses: &[EpochAnalysis],
    seed: u64,
    points: usize,
    report: &mut CheckReport,
) {
    explore(dataset, analyses, seed, Some(points), true, report);
}

/// Harness core. `sample` of `None` explores every boundary;
/// `with_checkpoints` exists so the serde-free stages remain testable
/// where a JSON codec is unavailable.
fn explore(
    dataset: &Dataset,
    analyses: &[EpochAnalysis],
    seed: u64,
    sample: Option<usize>,
    with_checkpoints: bool,
    report: &mut CheckReport,
) {
    if dataset.num_sessions() == 0 {
        return;
    }
    let _span = obs::global().span(obs::Stage::Crash);
    let root = scratch_dir(seed);
    let result = run_harness(
        dataset,
        analyses,
        seed,
        sample,
        with_checkpoints,
        &root,
        report,
    );
    let _ = fs::remove_dir_all(&root);
    if let Err(e) = result {
        report.violate(
            "crash-io",
            None,
            None,
            format!("crash harness I/O failed: {e}"),
        );
    }
}

fn scratch_dir(seed: u64) -> PathBuf {
    std::env::temp_dir().join(format!(
        "vqlens-check-crash-{}-{seed:016x}",
        std::process::id()
    ))
}

/// Everything the workload acknowledged before (simulated) death.
#[derive(Default)]
struct Ack {
    /// Lines in WAL batches whose `append_batch` returned `Ok`.
    wal_lines: usize,
    /// Epochs whose `save_epoch` returned `Ok`.
    saved_epochs: Vec<u32>,
    /// Whether the VQF export's commit returned `Ok`.
    vqf_ok: bool,
}

/// Immutable reference data shared by every run of the workload.
struct Fixture<'a> {
    lines: Vec<String>,
    checkpoints: &'a [EpochAnalysis],
    with_checkpoints: bool,
    manifest: Manifest,
    /// The dataset the VQF stage exports (rebuilt from `lines`).
    small: Dataset,
    vqf_fingerprint: u64,
    /// The bytes an uninterrupted dead-letter sink holds.
    dead_ref: Vec<u8>,
}

fn wal_opts() -> WalOptions {
    WalOptions {
        segment_bytes: SEGMENT_BYTES,
        // Retries re-run durable ops, which would make the op schedule
        // depend on which faults a plan injected; one attempt keeps every
        // run's schedule aligned with the recording.
        retry: RetryPolicy::none(),
    }
}

fn wal_dir(root: &Path) -> PathBuf {
    root.join("wal")
}

fn ckpt_dir(root: &Path) -> PathBuf {
    root.join("ckpt")
}

fn vqf_path(root: &Path) -> PathBuf {
    root.join("data.vqf")
}

fn dead_path(root: &Path) -> PathBuf {
    root.join("dead-letter.log")
}

/// The fixed durable workload. Every filesystem mutation goes through
/// [`ioenv`] shims, so an installed script sees the identical op sequence
/// on every run. Op failures are swallowed (after a simulated kill they
/// are the *point*); what succeeded is reported via [`Ack`].
fn run_workload(fixture: &Fixture<'_>, root: &Path) -> Ack {
    let mut ack = Ack::default();

    // Stage 1: WAL appends in acknowledged batches, rotating constantly.
    if let Ok((mut wal, _)) = Wal::open(&wal_dir(root), wal_opts()) {
        for chunk in fixture.lines.chunks(BATCH) {
            match wal.append_batch(chunk.iter().map(String::as_bytes)) {
                Ok(_) => ack.wal_lines += chunk.len(),
                Err(_) => break,
            }
        }
    }

    // Stage 2: checkpoint saves through the real store (atomic
    // write-temp-then-rename per epoch).
    if fixture.with_checkpoints {
        if let Ok((store, _)) = CheckpointStore::open(&ckpt_dir(root), fixture.manifest) {
            for a in fixture.checkpoints {
                let saved = store.save_epoch(&EpochCheckpoint {
                    epoch: a.epoch.0,
                    status: EpochStatus::Ok,
                    analysis: a.clone(),
                });
                match saved {
                    Ok(()) => ack.saved_epochs.push(a.epoch.0),
                    Err(_) => break,
                }
            }
        }
    }

    // Stage 3: VQF export (atomic whole-file write).
    ack.vqf_ok = write_vqf(&fixture.small, &vqf_path(root)).is_ok();

    // Stage 4: dead-letter-style plain appends (the serve quarantine
    // sink's discipline: best-effort, torn tails allowed).
    let dead = dead_path(root);
    if let Ok(mut f) = ioenv::create(&dead) {
        for line in fixture.lines.iter().take(DEAD_LINES) {
            let mut buf = line.clone().into_bytes();
            buf.push(b'\n');
            if ioenv::write_all(&mut f, &dead, &buf).is_err() {
                break;
            }
        }
    }
    ack
}

/// The dataset's CSV data lines, capped to [`MAX_LINES`].
fn csv_lines(dataset: &Dataset) -> io::Result<Vec<String>> {
    let mut buf = Vec::new();
    write_csv(dataset, &mut buf)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let text = String::from_utf8(buf)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    Ok(text
        .lines()
        .skip(1)
        .take(MAX_LINES)
        .map(str::to_owned)
        .collect())
}

fn build_fixture<'a>(
    dataset: &Dataset,
    analyses: &'a [EpochAnalysis],
    seed: u64,
    with_checkpoints: bool,
) -> io::Result<Fixture<'a>> {
    let lines = csv_lines(dataset)?;
    let mut csv = String::from(CSV_HEADER);
    csv.push('\n');
    for line in &lines {
        csv.push_str(line);
        csv.push('\n');
    }
    let small = read_csv(csv.as_bytes())
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let vqf_fingerprint = fingerprint_dataset(&small);
    let mut dead_ref = Vec::new();
    for line in lines.iter().take(DEAD_LINES) {
        dead_ref.extend_from_slice(line.as_bytes());
        dead_ref.push(b'\n');
    }
    let checkpoints = if with_checkpoints {
        &analyses[..analyses.len().min(MAX_CHECKPOINTS)]
    } else {
        &[]
    };
    Ok(Fixture {
        lines,
        checkpoints,
        with_checkpoints,
        // A fixed config hash: the manifest only has to agree with itself
        // across the reopen (fingerprint invalidation is resume's oracle).
        manifest: Manifest::new(
            0xC0A5_7C0D_E000_0000 ^ seed,
            fingerprint_dataset(dataset),
            dataset.num_epochs(),
        ),
        small,
        vqf_fingerprint,
        dead_ref,
    })
}

#[allow(clippy::too_many_arguments)]
fn run_harness(
    dataset: &Dataset,
    analyses: &[EpochAnalysis],
    seed: u64,
    sample: Option<usize>,
    with_checkpoints: bool,
    root: &Path,
    report: &mut CheckReport,
) -> io::Result<()> {
    let fixture = build_fixture(dataset, analyses, seed, with_checkpoints)?;

    // Phase 1 — record: run the workload untouched and capture the
    // durable-op schedule whose boundaries we will kill at.
    let _ = fs::remove_dir_all(root);
    fs::create_dir_all(root)?;
    let total_ops = {
        let guard = install(IoScript {
            root: root.to_path_buf(),
            plan: IoPlan::Record,
            seed,
            elide_syncs: true,
        });
        let ack = run_workload(&fixture, root);
        if ack.wal_lines != fixture.lines.len()
            || ack.saved_epochs.len() != fixture.checkpoints.len()
            || !ack.vqf_ok
        {
            return Err(io::Error::other(format!(
                "uninterrupted workload did not complete: {}/{} lines, {}/{} checkpoints, vqf {}",
                ack.wal_lines,
                fixture.lines.len(),
                ack.saved_epochs.len(),
                fixture.checkpoints.len(),
                ack.vqf_ok
            )));
        }
        guard.ops_seen()
    };

    // Phase 2 — explore: rerun the workload once per chosen boundary,
    // with a simulated kill at that op, and check recovery afterwards.
    let points: Vec<u64> = match sample {
        None => (0..total_ops).collect(),
        Some(n) => {
            // Evenly spread with a seeded phase, so successive fuzz
            // iterations sweep different boundaries of the same schedule.
            let n = n.max(1) as u64;
            let stride = (total_ops / n).max(1);
            (0..n.min(total_ops))
                .map(|i| (seed.wrapping_mul(0x9e37_79b9) + i * stride) % total_ops.max(1))
                .collect()
        }
    };
    for &k in &points {
        let _ = fs::remove_dir_all(root);
        fs::create_dir_all(root)?;
        let ack = {
            let _guard = install(IoScript {
                root: root.to_path_buf(),
                plan: IoPlan::KillAt { at: k },
                seed,
                elide_syncs: true,
            });
            run_workload(&fixture, root)
        };
        obs::global().incr(obs::Counter::CrashPointsExplored);
        check_recovery(&fixture, root, k, &ack, report)?;
    }
    Ok(())
}

/// After a kill at op `k` left `ack` acknowledged, verify every recovery
/// invariant and then complete the workload and demand bit-identity with
/// the uninterrupted run.
fn check_recovery(
    fixture: &Fixture<'_>,
    root: &Path,
    k: u64,
    ack: &Ack,
    report: &mut CheckReport,
) -> io::Result<()> {
    let at = |detail: String| format!("crash point {k}: {detail}");

    // crash-wal-prefix: an exact ordered prefix, covering all
    // acknowledged lines (a durable-but-unacknowledged tail batch may
    // extend it — the client never heard a 2xx, so replaying it is safe).
    report.ran(1);
    let (mut wal, replay) = Wal::open(&wal_dir(root), wal_opts())?;
    let prefix_ok = replay.records.len() <= fixture.lines.len()
        && replay
            .records
            .iter()
            .zip(&fixture.lines)
            .all(|(r, l)| r.as_slice() == l.as_bytes());
    if !prefix_ok {
        report.violate(
            "crash-wal-prefix",
            None,
            None,
            at(format!(
                "replayed {} records that are not an exact prefix of the {} appended",
                replay.records.len(),
                fixture.lines.len()
            )),
        );
    }
    if replay.records.len() < ack.wal_lines {
        report.violate(
            "crash-wal-prefix",
            None,
            None,
            at(format!(
                "{} acknowledged lines, only {} replayed",
                ack.wal_lines,
                replay.records.len()
            )),
        );
    }
    // Recovery completes the ingest: the healed log must accept the rest.
    let missing = fixture.lines.len().min(replay.records.len());
    wal.append_batch(fixture.lines[missing..].iter().map(String::as_bytes))?;
    drop(wal);

    // crash-checkpoint-torn: reopen resumes every acknowledged save with
    // a JSON-identical analysis, and nothing else than attempted saves.
    if fixture.with_checkpoints {
        report.ran(1);
        let (store, resumed) = CheckpointStore::open(&ckpt_dir(root), fixture.manifest)?;
        for &epoch in &ack.saved_epochs {
            match resumed.iter().find(|c| c.epoch == epoch) {
                None => report.violate(
                    "crash-checkpoint-torn",
                    None,
                    None,
                    at(format!(
                        "acknowledged checkpoint for epoch {epoch} not resumed"
                    )),
                ),
                Some(c) => {
                    let original = fixture
                        .checkpoints
                        .iter()
                        .find(|a| a.epoch.0 == epoch)
                        .expect("saved epochs come from the fixture");
                    if !json_equal(&c.analysis, original) {
                        report.violate(
                            "crash-checkpoint-torn",
                            None,
                            None,
                            at(format!("resumed checkpoint for epoch {epoch} differs")),
                        );
                    }
                }
            }
        }
        for c in &resumed {
            if !fixture.checkpoints.iter().any(|a| a.epoch.0 == c.epoch) {
                report.violate(
                    "crash-checkpoint-torn",
                    None,
                    None,
                    at(format!("resumed epoch {} was never saved", c.epoch)),
                );
            }
        }
        // Complete: re-save whatever is missing.
        for a in fixture.checkpoints {
            if !resumed.iter().any(|c| c.epoch == a.epoch.0) {
                store
                    .save_epoch(&EpochCheckpoint {
                        epoch: a.epoch.0,
                        status: EpochStatus::Ok,
                        analysis: a.clone(),
                    })
                    .map_err(io::Error::other)?;
            }
        }
    }

    // crash-vqf-atomic: absent or complete, never torn; an acknowledged
    // commit implies present.
    report.ran(1);
    let vqf = vqf_path(root);
    let vqf_present_ok = match fs::metadata(&vqf) {
        Ok(_) => match read_vqf(&vqf) {
            Ok(back) => {
                let ok = fingerprint_dataset(&back) == fixture.vqf_fingerprint;
                if !ok {
                    report.violate(
                        "crash-vqf-atomic",
                        None,
                        None,
                        at("VQF file loads but differs from the written dataset".into()),
                    );
                }
                ok
            }
            Err(e) => {
                report.violate(
                    "crash-vqf-atomic",
                    None,
                    None,
                    at(format!("committed VQF file failed to load: {e}")),
                );
                false
            }
        },
        Err(_) => {
            if ack.vqf_ok {
                report.violate(
                    "crash-vqf-atomic",
                    None,
                    None,
                    at("acknowledged VQF commit but no file on disk".into()),
                );
            }
            false
        }
    };
    if !vqf_present_ok {
        write_vqf(&fixture.small, &vqf).map_err(io::Error::other)?;
    }

    // crash-deadletter-prefix: recovered bytes are a prefix of the
    // uninterrupted sink's bytes.
    report.ran(1);
    let dead = fs::read(dead_path(root)).unwrap_or_default();
    if dead.len() > fixture.dead_ref.len() || fixture.dead_ref[..dead.len()] != dead[..] {
        report.violate(
            "crash-deadletter-prefix",
            None,
            None,
            at(format!(
                "recovered dead-letter bytes ({}) are not a prefix of the reference ({})",
                dead.len(),
                fixture.dead_ref.len()
            )),
        );
    }

    // crash-recovery-equivalence: with the workload completed, the final
    // state must be bit-identical to the uninterrupted run's.
    report.ran(1);
    let (_, full) = Wal::open(&wal_dir(root), wal_opts())?;
    let wal_equal = full.records.len() == fixture.lines.len()
        && full
            .records
            .iter()
            .zip(&fixture.lines)
            .all(|(r, l)| r.as_slice() == l.as_bytes());
    if !wal_equal {
        report.violate(
            "crash-recovery-equivalence",
            None,
            None,
            at(format!(
                "completed WAL replays {} records, expected the full {}",
                full.records.len(),
                fixture.lines.len()
            )),
        );
    }
    if fixture.with_checkpoints {
        let (_, resumed) = CheckpointStore::open(&ckpt_dir(root), fixture.manifest)?;
        let ckpt_equal = resumed.len() == fixture.checkpoints.len()
            && fixture.checkpoints.iter().all(|a| {
                resumed
                    .iter()
                    .any(|c| c.epoch == a.epoch.0 && json_equal(&c.analysis, a))
            });
        if !ckpt_equal {
            report.violate(
                "crash-recovery-equivalence",
                None,
                None,
                at("completed checkpoint set differs from the uninterrupted run".into()),
            );
        }
    }
    let back = read_vqf(&vqf).map_err(io::Error::other)?;
    if fingerprint_dataset(&back) != fixture.vqf_fingerprint {
        report.violate(
            "crash-recovery-equivalence",
            None,
            None,
            at("completed VQF export differs from the uninterrupted run".into()),
        );
    }
    Ok(())
}

fn json_equal(a: &EpochAnalysis, b: &EpochAnalysis) -> bool {
    match (serde_json::to_value(a), serde_json::to_value(b)) {
        (Ok(x), Ok(y)) => x == y,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqlens_cluster::critical::CriticalParams;
    use vqlens_cluster::problem::SignificanceParams;
    use vqlens_model::epoch::EpochId;
    use vqlens_model::metric::Thresholds;
    use vqlens_synth::scenario::{generate, Scenario};

    fn smoke_analyses(dataset: &Dataset) -> Vec<EpochAnalysis> {
        let thresholds = Thresholds::default();
        let sig = SignificanceParams::scaled_to(
            dataset.num_sessions() as u64 / u64::from(dataset.num_epochs().max(1)),
        );
        let params = CriticalParams::default();
        (0..dataset.num_epochs())
            .map(EpochId)
            .filter(|id| !dataset.epoch(*id).is_empty())
            .map(|id| EpochAnalysis::compute(id, dataset.epoch(id), &thresholds, &sig, &params))
            .collect()
    }

    /// The serde-free stages (WAL, VQF, dead-letter) across every crash
    /// point. Checkpoints are exercised by `crash_oracles_pass_on_smoke`,
    /// which needs a working JSON codec.
    #[test]
    fn crash_oracles_pass_without_checkpoints() {
        let output = generate(&Scenario::smoke());
        let analyses = smoke_analyses(&output.dataset);
        let mut report = CheckReport::default();
        explore(&output.dataset, &analyses, 0xC4A5, None, false, &mut report);
        assert!(report.passed(), "crash oracles violated:\n{report}");
        assert!(
            report.oracles_run >= 100,
            "only {} oracle evaluations — the workload is too small",
            report.oracles_run
        );
    }

    #[test]
    fn crash_oracles_pass_on_smoke() {
        let output = generate(&Scenario::smoke());
        let analyses = smoke_analyses(&output.dataset);
        let mut report = CheckReport::default();
        check_crash(&output.dataset, &analyses, 0xC4A6, &mut report);
        assert!(report.passed(), "crash oracles violated:\n{report}");
    }

    #[test]
    fn sampled_exploration_is_bounded() {
        let output = generate(&Scenario::smoke());
        let analyses = smoke_analyses(&output.dataset);
        let mut report = CheckReport::default();
        let before = obs::global().get(obs::Counter::CrashPointsExplored);
        // `with_checkpoints: false` keeps this runnable where the JSON
        // codec is stubbed out; the checkpointed sampled path is what
        // every fuzz iteration runs.
        explore(
            &output.dataset,
            &analyses,
            0xC4A7,
            Some(5),
            false,
            &mut report,
        );
        let explored = obs::global().get(obs::Counter::CrashPointsExplored) - before;
        assert!(explored <= 5, "sampled run explored {explored} points");
        assert!(report.passed(), "crash oracles violated:\n{report}");
    }
}
