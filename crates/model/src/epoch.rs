//! Analysis epochs: the one-hour buckets over which clusters are formed.
//!
//! One hour is the finest granularity of the paper's dataset (§3.1,
//! footnote 2). Epoch ids are hours since the start of the trace; the
//! default trace is two weeks = 336 epochs.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Hours in one day.
pub const HOURS_PER_DAY: u32 = 24;
/// Hours in one week.
pub const HOURS_PER_WEEK: u32 = 7 * HOURS_PER_DAY;
/// Length of the paper's trace: two weeks of hourly epochs.
pub const TWO_WEEKS: u32 = 2 * HOURS_PER_WEEK;

/// One-hour analysis epoch, counted from the start of the trace.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct EpochId(pub u32);

impl EpochId {
    /// Hour-of-day (0..24) assuming the trace starts at midnight.
    #[inline]
    pub const fn hour_of_day(self) -> u32 {
        self.0 % HOURS_PER_DAY
    }

    /// Day index since trace start.
    #[inline]
    pub const fn day(self) -> u32 {
        self.0 / HOURS_PER_DAY
    }

    /// Week index since trace start (0 = first week).
    #[inline]
    pub const fn week(self) -> u32 {
        self.0 / HOURS_PER_WEEK
    }

    /// Hour-of-week (0..168).
    #[inline]
    pub const fn hour_of_week(self) -> u32 {
        self.0 % HOURS_PER_WEEK
    }

    /// The next epoch.
    #[inline]
    pub const fn next(self) -> EpochId {
        EpochId(self.0 + 1)
    }

    /// Is this epoch immediately after `other`?
    #[inline]
    pub const fn is_successor_of(self, other: EpochId) -> bool {
        self.0 == other.0 + 1
    }
}

impl fmt::Display for EpochId {
    /// Renders like the paper's time axes, e.g. `d3 14:00`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{} {:02}:00", self.day(), self.hour_of_day())
    }
}

/// A half-open range of epochs `[start, end)`, used for train/test splits in
/// the proactive what-if analysis (paper §5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EpochRange {
    /// First epoch in the range.
    pub start: EpochId,
    /// One past the last epoch in the range.
    pub end: EpochId,
}

impl EpochRange {
    /// Construct a range; panics if `start > end`.
    pub fn new(start: EpochId, end: EpochId) -> EpochRange {
        assert!(start.0 <= end.0, "invalid epoch range {start}..{end}");
        EpochRange { start, end }
    }

    /// The full range `[0, n)`.
    pub fn first_n(n: u32) -> EpochRange {
        EpochRange::new(EpochId(0), EpochId(n))
    }

    /// Number of epochs in the range.
    #[inline]
    pub const fn len(self) -> u32 {
        self.end.0 - self.start.0
    }

    /// True when the range is empty.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.start.0 == self.end.0
    }

    /// Does the range contain `epoch`?
    #[inline]
    pub const fn contains(self, epoch: EpochId) -> bool {
        self.start.0 <= epoch.0 && epoch.0 < self.end.0
    }

    /// Iterate the epochs in the range.
    pub fn iter(self) -> impl Iterator<Item = EpochId> {
        (self.start.0..self.end.0).map(EpochId)
    }

    /// The paper's intra-week split of week `w`: first 4 days for history,
    /// last 3 days for evaluation (§5.2).
    pub fn intra_week_split(week: u32) -> (EpochRange, EpochRange) {
        let base = week * HOURS_PER_WEEK;
        let split = base + 4 * HOURS_PER_DAY;
        (
            EpochRange::new(EpochId(base), EpochId(split)),
            EpochRange::new(EpochId(split), EpochId(base + HOURS_PER_WEEK)),
        )
    }

    /// The paper's inter-week split: week 0 for history, week 1 for
    /// evaluation (§5.2).
    pub fn inter_week_split() -> (EpochRange, EpochRange) {
        (
            EpochRange::new(EpochId(0), EpochId(HOURS_PER_WEEK)),
            EpochRange::new(EpochId(HOURS_PER_WEEK), EpochId(TWO_WEEKS)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_arithmetic() {
        let e = EpochId(170);
        assert_eq!(e.hour_of_day(), 2);
        assert_eq!(e.day(), 7);
        assert_eq!(e.week(), 1);
        assert_eq!(e.hour_of_week(), 2);
        assert_eq!(e.next(), EpochId(171));
        assert!(EpochId(171).is_successor_of(e));
        assert!(!EpochId(172).is_successor_of(e));
        assert_eq!(e.to_string(), "d7 02:00");
    }

    #[test]
    fn range_basics() {
        let r = EpochRange::first_n(10);
        assert_eq!(r.len(), 10);
        assert!(!r.is_empty());
        assert!(r.contains(EpochId(0)));
        assert!(r.contains(EpochId(9)));
        assert!(!r.contains(EpochId(10)));
        assert_eq!(r.iter().count(), 10);
        assert!(EpochRange::new(EpochId(3), EpochId(3)).is_empty());
    }

    #[test]
    #[should_panic(expected = "invalid epoch range")]
    fn range_rejects_backwards() {
        let _ = EpochRange::new(EpochId(5), EpochId(4));
    }

    #[test]
    fn paper_splits() {
        let (train, test) = EpochRange::intra_week_split(0);
        assert_eq!(train.len(), 96);
        assert_eq!(test.len(), 72);
        assert_eq!(train.end, test.start);

        let (w1, w2) = EpochRange::inter_week_split();
        assert_eq!(w1.len(), HOURS_PER_WEEK);
        assert_eq!(w2.len(), HOURS_PER_WEEK);
        assert_eq!(w1.end, w2.start);
        assert_eq!(w2.end.0, TWO_WEEKS);
    }
}
