//! Quality metrics, per-session measurements, and problem thresholds.
//!
//! The paper (§2) studies four metrics *independently*: buffering ratio,
//! average bitrate, join time, and join failure. A session is a *problem
//! session* w.r.t. a metric when it crosses that metric's threshold:
//!
//! * buffering ratio > 5 % (sharp engagement drop beyond this point),
//! * average bitrate < 700 kbps (roughly the "360p" recommendation),
//! * join time > 10 s (conservative tolerance bound),
//! * join failure: binary — no content ever played.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The four quality metrics of the paper, in its presentation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(u8)]
pub enum Metric {
    /// Fraction of session wall-clock time spent rebuffering.
    BufRatio = 0,
    /// Time-weighted average video playback bitrate.
    Bitrate = 1,
    /// Delay from "play" click to first rendered frame.
    JoinTime = 2,
    /// The session never started playing at all.
    JoinFailure = 3,
}

impl Metric {
    /// All metrics in canonical order.
    pub const ALL: [Metric; 4] = [
        Metric::BufRatio,
        Metric::Bitrate,
        Metric::JoinTime,
        Metric::JoinFailure,
    ];

    /// Number of metrics.
    pub const COUNT: usize = 4;

    /// Index (0..4) of this metric.
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Metric for an index; panics if `idx >= 4`.
    #[inline]
    pub const fn from_index(idx: usize) -> Metric {
        Self::ALL[idx]
    }

    /// Short name matching the paper's tables.
    pub const fn name(self) -> &'static str {
        match self {
            Metric::BufRatio => "BufRatio",
            Metric::Bitrate => "Bitrate",
            Metric::JoinTime => "JoinTime",
            Metric::JoinFailure => "JoinFailure",
        }
    }
}

impl fmt::Display for Metric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Client-side quality measurement of one video session.
///
/// Mirrors what the paper's client instrumentation reports: join outcome,
/// join delay, play duration, total rebuffering time, and time-weighted
/// average bitrate. For failed joins the playback fields are meaningless and
/// the accessors return `None`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QualityMeasurement {
    /// True when no content was ever played ("join failure").
    pub join_failed: bool,
    /// Milliseconds from play click to first frame (0 if `join_failed`).
    pub join_time_ms: u32,
    /// Seconds of content the viewer watched (0 if `join_failed`).
    pub play_duration_s: f32,
    /// Seconds spent rebuffering midstream (0 if `join_failed`).
    pub buffering_s: f32,
    /// Time-weighted average playback bitrate in kbps (0 if `join_failed`).
    pub avg_bitrate_kbps: f32,
}

impl QualityMeasurement {
    /// A failed join: nothing ever played.
    pub const fn failed() -> QualityMeasurement {
        QualityMeasurement {
            join_failed: true,
            join_time_ms: 0,
            play_duration_s: 0.0,
            buffering_s: 0.0,
            avg_bitrate_kbps: 0.0,
        }
    }

    /// A successfully joined session.
    pub fn joined(
        join_time_ms: u32,
        play_duration_s: f32,
        buffering_s: f32,
        avg_bitrate_kbps: f32,
    ) -> QualityMeasurement {
        debug_assert!(play_duration_s >= 0.0 && buffering_s >= 0.0 && avg_bitrate_kbps >= 0.0);
        QualityMeasurement {
            join_failed: false,
            join_time_ms,
            play_duration_s,
            buffering_s,
            avg_bitrate_kbps,
        }
    }

    /// Buffering ratio `B / T` where `T` is total session time (play +
    /// buffering), per the paper's definition. `None` for failed joins or
    /// zero-length sessions.
    pub fn buffering_ratio(&self) -> Option<f64> {
        if self.join_failed {
            return None;
        }
        let total = f64::from(self.play_duration_s) + f64::from(self.buffering_s);
        if total <= 0.0 {
            return None;
        }
        Some(f64::from(self.buffering_s) / total)
    }

    /// Join time in milliseconds; `None` for failed joins.
    pub fn join_time(&self) -> Option<u32> {
        if self.join_failed {
            None
        } else {
            Some(self.join_time_ms)
        }
    }

    /// Average bitrate in kbps; `None` for failed joins.
    pub fn bitrate(&self) -> Option<f64> {
        if self.join_failed {
            None
        } else {
            Some(f64::from(self.avg_bitrate_kbps))
        }
    }
}

/// Problem-session thresholds (§2 of the paper, with its default values).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Thresholds {
    /// Sessions with buffering ratio strictly above this are problems
    /// (paper: 0.05).
    pub max_buffering_ratio: f64,
    /// Sessions with average bitrate strictly below this are problems
    /// (paper: 700 kbps).
    pub min_bitrate_kbps: f64,
    /// Sessions with join time strictly above this are problems
    /// (paper: 10 000 ms).
    pub max_join_time_ms: u32,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds {
            max_buffering_ratio: 0.05,
            min_bitrate_kbps: 700.0,
            max_join_time_ms: 10_000,
        }
    }
}

impl Thresholds {
    /// Is this session a problem session w.r.t. `metric`?
    ///
    /// Following the paper, the four metrics are judged independently.
    /// Failed joins count as problems only for [`Metric::JoinFailure`]: the
    /// other three metrics are not measurable for a session that never
    /// played, and the paper's problem ratios use all sessions in a cluster
    /// as the denominator.
    pub fn is_problem(&self, q: &QualityMeasurement, metric: Metric) -> bool {
        match metric {
            Metric::JoinFailure => q.join_failed,
            Metric::BufRatio => q
                .buffering_ratio()
                .is_some_and(|r| r > self.max_buffering_ratio),
            Metric::Bitrate => q.bitrate().is_some_and(|b| b < self.min_bitrate_kbps),
            Metric::JoinTime => q.join_time().is_some_and(|t| t > self.max_join_time_ms),
        }
    }

    /// Compact bitfield of per-metric problem flags for one session.
    pub fn problem_flags(&self, q: &QualityMeasurement) -> ProblemFlags {
        let mut flags = 0u8;
        for m in Metric::ALL {
            if self.is_problem(q, m) {
                flags |= 1 << m.index();
            }
        }
        ProblemFlags(flags)
    }
}

/// Per-metric problem flags of one session, as a 4-bit set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct ProblemFlags(pub u8);

impl ProblemFlags {
    /// Is the session a problem on `metric`?
    #[inline]
    pub const fn is_problem(self, metric: Metric) -> bool {
        self.0 & (1 << metric.index()) != 0
    }

    /// Is the session a problem on any metric?
    #[inline]
    pub const fn any(self) -> bool {
        self.0 != 0
    }

    /// Set the flag for `metric`.
    #[inline]
    pub fn set(&mut self, metric: Metric) {
        self.0 |= 1 << metric.index();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffering_ratio_definition() {
        let q = QualityMeasurement::joined(1000, 190.0, 10.0, 2000.0);
        assert!((q.buffering_ratio().unwrap() - 0.05).abs() < 1e-12);
        assert_eq!(QualityMeasurement::failed().buffering_ratio(), None);
        let zero = QualityMeasurement::joined(1000, 0.0, 0.0, 2000.0);
        assert_eq!(zero.buffering_ratio(), None);
    }

    #[test]
    fn default_thresholds_match_paper() {
        let t = Thresholds::default();
        assert_eq!(t.max_buffering_ratio, 0.05);
        assert_eq!(t.min_bitrate_kbps, 700.0);
        assert_eq!(t.max_join_time_ms, 10_000);
    }

    #[test]
    fn problem_classification_boundaries() {
        let t = Thresholds::default();
        // Exactly at threshold is NOT a problem (strict comparison).
        let at = QualityMeasurement::joined(10_000, 95.0, 5.0, 700.0);
        assert!(!t.is_problem(&at, Metric::BufRatio));
        assert!(!t.is_problem(&at, Metric::Bitrate));
        assert!(!t.is_problem(&at, Metric::JoinTime));
        assert!(!t.is_problem(&at, Metric::JoinFailure));
        // Just over each threshold.
        let bad = QualityMeasurement::joined(10_001, 90.0, 10.0, 699.9);
        assert!(t.is_problem(&bad, Metric::BufRatio));
        assert!(t.is_problem(&bad, Metric::Bitrate));
        assert!(t.is_problem(&bad, Metric::JoinTime));
        assert!(!t.is_problem(&bad, Metric::JoinFailure));
    }

    #[test]
    fn failed_sessions_only_fail_join_failure() {
        let t = Thresholds::default();
        let q = QualityMeasurement::failed();
        assert!(t.is_problem(&q, Metric::JoinFailure));
        assert!(!t.is_problem(&q, Metric::BufRatio));
        assert!(!t.is_problem(&q, Metric::Bitrate));
        assert!(!t.is_problem(&q, Metric::JoinTime));
    }

    #[test]
    fn flags_roundtrip() {
        let t = Thresholds::default();
        let bad = QualityMeasurement::joined(20_000, 80.0, 20.0, 300.0);
        let flags = t.problem_flags(&bad);
        assert!(flags.is_problem(Metric::BufRatio));
        assert!(flags.is_problem(Metric::Bitrate));
        assert!(flags.is_problem(Metric::JoinTime));
        assert!(!flags.is_problem(Metric::JoinFailure));
        assert!(flags.any());
        assert!(!ProblemFlags::default().any());
        let mut f = ProblemFlags::default();
        f.set(Metric::JoinFailure);
        assert!(f.is_problem(Metric::JoinFailure));
    }

    #[test]
    fn metric_indexing() {
        for (i, m) in Metric::ALL.into_iter().enumerate() {
            assert_eq!(m.index(), i);
            assert_eq!(Metric::from_index(i), m);
        }
        assert_eq!(Metric::BufRatio.to_string(), "BufRatio");
    }
}
