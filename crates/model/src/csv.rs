//! CSV import/export of session traces.
//!
//! The analysis side of vqlens is data-source agnostic: anything that can
//! produce per-session records with the seven attributes and four quality
//! fields can be analyzed. This module defines the interchange format —
//! one session per line, attribute *names* (not ids) so files are
//! self-describing and stable across dictionary orderings:
//!
//! ```text
//! epoch,asn,cdn,site,vod_or_live,player,browser,conn_type,join_failed,join_time_ms,play_duration_s,buffering_s,avg_bitrate_kbps
//! 17,AS7922,cdn-global-00,site-003,VoD,HTML5,Chrome,Cable,0,812,294.5,0.0,2280.0
//! ```
//!
//! The format is deliberately quote-free: attribute names containing
//! commas, quotes, or newlines are rejected at write time rather than
//! silently escaped (no real ASN/CDN/site identifier contains them).

use crate::attr::{AttrKey, SessionAttrs};
use crate::dataset::{Dataset, DatasetMeta};
use crate::epoch::EpochId;
use crate::metric::QualityMeasurement;
use crate::session::SessionRecord;
use std::fmt;
use std::io::{BufRead, Write};

/// Upper bound on epoch ids accepted from CSV (~114 years of hourly data).
pub const MAX_EPOCHS: u32 = 1_000_000;

/// The header line of the interchange format.
pub const CSV_HEADER: &str = "epoch,asn,cdn,site,vod_or_live,player,browser,conn_type,\
join_failed,join_time_ms,play_duration_s,buffering_s,avg_bitrate_kbps";

/// Errors arising while reading or writing trace CSV.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The first line is not the expected header.
    BadHeader {
        /// What the first line actually was.
        found: String,
    },
    /// A data line is malformed.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// What is wrong with it.
        reason: String,
    },
    /// An attribute name cannot be represented (write side).
    UnencodableName {
        /// The offending name.
        name: String,
    },
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "I/O error: {e}"),
            CsvError::BadHeader { found } => {
                write!(f, "bad header: expected {CSV_HEADER:?}, found {found:?}")
            }
            CsvError::BadLine { line, reason } => write!(f, "line {line}: {reason}"),
            CsvError::UnencodableName { name } => {
                write!(f, "attribute name {name:?} contains a delimiter")
            }
        }
    }
}

impl std::error::Error for CsvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CsvError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

fn check_name(name: &str) -> Result<&str, CsvError> {
    if name.contains(',') || name.contains('\n') || name.contains('\r') || name.contains('"') {
        return Err(CsvError::UnencodableName {
            name: name.to_owned(),
        });
    }
    Ok(name)
}

/// Write a dataset as CSV.
pub fn write_csv<W: Write>(dataset: &Dataset, mut out: W) -> Result<(), CsvError> {
    writeln!(out, "{CSV_HEADER}")?;
    for (epoch, data) in dataset.iter_epochs() {
        for (attrs, q) in data.iter() {
            write!(out, "{}", epoch.0)?;
            for key in AttrKey::ALL {
                let id = attrs.get(key);
                let name = dataset
                    .value_name(key, id)
                    .ok_or_else(|| CsvError::UnencodableName {
                        name: format!("<unknown {key} id {id}>"),
                    })?;
                write!(out, ",{}", check_name(name)?)?;
            }
            writeln!(
                out,
                ",{},{},{},{},{}",
                u8::from(q.join_failed),
                q.join_time_ms,
                q.play_duration_s,
                q.buffering_s,
                q.avg_bitrate_kbps
            )?;
        }
    }
    Ok(())
}

/// Read a dataset from CSV. Attribute dictionaries are built in
/// first-appearance order; the epoch count is `max epoch + 1`.
pub fn read_csv<R: BufRead>(input: R) -> Result<Dataset, CsvError> {
    let mut lines = input.lines().enumerate();
    let (_, header) = lines.next().ok_or_else(|| CsvError::BadHeader {
        found: "<empty input>".into(),
    })?;
    let header = header?;
    if header.trim() != CSV_HEADER {
        return Err(CsvError::BadHeader { found: header });
    }

    // Two passes are avoided by buffering parsed rows and sizing the
    // dataset afterwards.
    struct Row {
        epoch: u32,
        names: [String; 7],
        quality: QualityMeasurement,
    }
    let mut rows: Vec<Row> = Vec::new();
    let mut max_epoch = 0u32;
    for (idx, line) in lines {
        let line_no = idx + 1;
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 13 {
            return Err(CsvError::BadLine {
                line: line_no,
                reason: format!("expected 13 fields, found {}", fields.len()),
            });
        }
        let bad = |what: &str| CsvError::BadLine {
            line: line_no,
            reason: format!("invalid {what}"),
        };
        let epoch: u32 = fields[0].trim().parse().map_err(|_| bad("epoch"))?;
        // A dataset allocates one bucket per epoch up to the maximum id, so
        // bound it: a fat-fingered epoch like 4294967295 must not allocate
        // four billion buckets (or overflow `max_epoch + 1`).
        if epoch >= MAX_EPOCHS {
            return Err(bad("epoch (exceeds the 1,000,000-epoch bound)"));
        }
        max_epoch = max_epoch.max(epoch);
        let names: [String; 7] = std::array::from_fn(|i| fields[1 + i].trim().to_owned());
        if names.iter().any(String::is_empty) {
            return Err(bad("attribute name (empty)"));
        }
        let join_failed = match fields[8].trim() {
            "0" | "false" => false,
            "1" | "true" => true,
            _ => return Err(bad("join_failed")),
        };
        let join_time_ms: u32 = fields[9].trim().parse().map_err(|_| bad("join_time_ms"))?;
        let play: f32 = fields[10].trim().parse().map_err(|_| bad("play_duration_s"))?;
        let buffering: f32 = fields[11].trim().parse().map_err(|_| bad("buffering_s"))?;
        let bitrate: f32 = fields[12]
            .trim()
            .parse()
            .map_err(|_| bad("avg_bitrate_kbps"))?;
        if !(play.is_finite() && buffering.is_finite() && bitrate.is_finite()) {
            return Err(bad("non-finite quality value"));
        }
        if play < 0.0 || buffering < 0.0 || bitrate < 0.0 {
            return Err(bad("negative quality value"));
        }
        let quality = if join_failed {
            QualityMeasurement::failed()
        } else {
            QualityMeasurement::joined(join_time_ms, play, buffering, bitrate)
        };
        rows.push(Row {
            epoch,
            names,
            quality,
        });
    }

    let mut dataset = Dataset::new(
        if rows.is_empty() { 0 } else { max_epoch + 1 },
        DatasetMeta {
            name: "csv-import".into(),
            description: format!("{} sessions imported from CSV", rows.len()),
            seed: None,
        },
    );
    for row in rows {
        let mut values = [0u32; 7];
        for (i, name) in row.names.iter().enumerate() {
            let key = AttrKey::from_index(i);
            // Intern would panic when a dimension's packed id space is
            // exhausted; surface it as a parse error instead.
            if dataset.dict(key).id(name).is_none()
                && dataset.dict(key).len() as u64 > u64::from(crate::attr::max_value(i))
            {
                return Err(CsvError::BadLine {
                    line: 0,
                    reason: format!(
                        "too many distinct {key} values (limit {})",
                        u64::from(crate::attr::max_value(i)) + 1
                    ),
                });
            }
            values[i] = dataset.intern(key, name);
        }
        dataset.push(SessionRecord::new(
            EpochId(row.epoch),
            SessionAttrs::new(values),
            row.quality,
        ));
    }
    Ok(dataset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn tiny() -> Dataset {
        let mut ds = Dataset::new(2, DatasetMeta::default());
        let mk = |ds: &mut Dataset, names: [&str; 7]| {
            let values: [u32; 7] =
                std::array::from_fn(|i| ds.intern(AttrKey::from_index(i), names[i]));
            SessionAttrs::new(values)
        };
        let a = mk(
            &mut ds,
            ["AS7922", "cdn-a", "site-1", "VoD", "HTML5", "Chrome", "Cable"],
        );
        let b = mk(
            &mut ds,
            ["AS3320", "cdn-b", "site-2", "Live", "Flash", "MSIE", "DSL"],
        );
        ds.push(SessionRecord::new(
            EpochId(0),
            a,
            QualityMeasurement::joined(812, 294.5, 0.0, 2280.0),
        ));
        ds.push(SessionRecord::new(
            EpochId(1),
            b,
            QualityMeasurement::failed(),
        ));
        ds
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let ds = tiny();
        let mut buf = Vec::new();
        write_csv(&ds, &mut buf).expect("write");
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with(CSV_HEADER));
        assert!(text.contains("AS7922"));

        let back = read_csv(BufReader::new(&buf[..])).expect("read");
        assert_eq!(back.num_epochs(), ds.num_epochs());
        assert_eq!(back.num_sessions(), ds.num_sessions());
        let orig: Vec<_> = ds.iter_sessions().collect();
        let new: Vec<_> = back.iter_sessions().collect();
        for (a, b) in orig.iter().zip(&new) {
            assert_eq!(a.epoch, b.epoch);
            assert_eq!(a.quality, b.quality);
            for key in AttrKey::ALL {
                assert_eq!(
                    ds.value_name(key, a.attrs.get(key)),
                    back.value_name(key, b.attrs.get(key)),
                );
            }
        }
    }

    #[test]
    fn rejects_bad_header() {
        let err = read_csv(BufReader::new(b"nope\n".as_slice())).unwrap_err();
        assert!(matches!(err, CsvError::BadHeader { .. }));
        assert!(err.to_string().contains("bad header"));
    }

    #[test]
    fn rejects_malformed_lines_with_location() {
        let input = format!("{CSV_HEADER}\n0,a,b,c,VoD,p,w,Cable,0,100,1.0,0.0\n");
        let err = read_csv(BufReader::new(input.as_bytes())).unwrap_err();
        match err {
            CsvError::BadLine { line, reason } => {
                assert_eq!(line, 2);
                assert!(reason.contains("13 fields"));
            }
            other => panic!("wrong error: {other}"),
        }

        let input = format!("{CSV_HEADER}\nX,a,b,c,VoD,p,w,Cable,0,100,1.0,0.0,500\n");
        let err = read_csv(BufReader::new(input.as_bytes())).unwrap_err();
        assert!(err.to_string().contains("invalid epoch"));

        let input = format!("{CSV_HEADER}\n0,a,b,c,VoD,p,w,Cable,2,100,1.0,0.0,500\n");
        let err = read_csv(BufReader::new(input.as_bytes())).unwrap_err();
        assert!(err.to_string().contains("invalid join_failed"));

        let input = format!("{CSV_HEADER}\n0,a,b,c,VoD,p,w,Cable,0,100,-1.0,0.0,500\n");
        let err = read_csv(BufReader::new(input.as_bytes())).unwrap_err();
        assert!(err.to_string().contains("negative"));
    }

    #[test]
    fn rejects_unencodable_names() {
        let mut ds = Dataset::new(1, DatasetMeta::default());
        let values: [u32; 7] = std::array::from_fn(|i| {
            ds.intern(
                AttrKey::from_index(i),
                if i == 1 { "evil,name" } else { "ok" },
            )
        });
        ds.push(SessionRecord::new(
            EpochId(0),
            SessionAttrs::new(values),
            QualityMeasurement::failed(),
        ));
        let err = write_csv(&ds, Vec::new()).unwrap_err();
        assert!(matches!(err, CsvError::UnencodableName { .. }));
    }

    #[test]
    fn empty_input_reads_as_empty_dataset() {
        let input = format!("{CSV_HEADER}\n");
        let ds = read_csv(BufReader::new(input.as_bytes())).expect("read");
        assert_eq!(ds.num_epochs(), 0);
        assert_eq!(ds.num_sessions(), 0);
        // Blank lines are skipped.
        let input = format!("{CSV_HEADER}\n\n\n");
        let ds = read_csv(BufReader::new(input.as_bytes())).expect("read");
        assert_eq!(ds.num_sessions(), 0);
    }

    #[test]
    fn failed_sessions_zero_playback_fields() {
        let input = format!("{CSV_HEADER}\n3,a,b,c,VoD,p,w,Cable,1,9999,123.0,4.0,500\n");
        let ds = read_csv(BufReader::new(input.as_bytes())).expect("read");
        let s = ds.iter_sessions().next().unwrap();
        assert!(s.quality.join_failed);
        // Playback fields for a failed join are normalized away.
        assert_eq!(s.quality.play_duration_s, 0.0);
        assert_eq!(s.quality.join_time_ms, 0);
        assert_eq!(s.epoch, EpochId(3));
        assert_eq!(ds.num_epochs(), 4);
    }
}
