//! CSV import/export of session traces.
//!
//! The analysis side of vqlens is data-source agnostic: anything that can
//! produce per-session records with the seven attributes and four quality
//! fields can be analyzed. This module defines the interchange format —
//! one session per line, attribute *names* (not ids) so files are
//! self-describing and stable across dictionary orderings:
//!
//! ```text
//! epoch,asn,cdn,site,vod_or_live,player,browser,conn_type,join_failed,join_time_ms,play_duration_s,buffering_s,avg_bitrate_kbps
//! 17,AS7922,cdn-global-00,site-003,VoD,HTML5,Chrome,Cable,0,812,294.5,0.0,2280.0
//! ```
//!
//! The format is deliberately quote-free: attribute names containing
//! commas, quotes, or newlines are rejected at write time rather than
//! silently escaped (no real ASN/CDN/site identifier contains them).
//!
//! Real telemetry is never clean, so the reader has two modes
//! ([`ReadMode`]): **strict** (the default — the first malformed line
//! aborts the import) and **lenient** (malformed lines are quarantined
//! into an [`IngestReport`] and optionally echoed to a dead-letter
//! writer, up to a configurable bad-line budget beyond which the import
//! still fails loudly with [`CsvError::TooManyBadLines`]). Both modes
//! accept CRLF line endings, a leading UTF-8 BOM, and trailing blank
//! lines.

use crate::attr::{AttrKey, SessionAttrs};
use crate::dataset::{Dataset, DatasetMeta};
use crate::epoch::EpochId;
use crate::metric::QualityMeasurement;
use crate::session::SessionRecord;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::io::{BufRead, Write};
use vqlens_obs as obs;

/// Upper bound on epoch ids accepted from CSV (~114 years of hourly data).
pub const MAX_EPOCHS: u32 = 1_000_000;

/// The header line of the interchange format.
pub const CSV_HEADER: &str = "epoch,asn,cdn,site,vod_or_live,player,browser,conn_type,\
join_failed,join_time_ms,play_duration_s,buffering_s,avg_bitrate_kbps";

/// Errors arising while reading or writing trace CSV.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The first line is not the expected header.
    BadHeader {
        /// What the first line actually was.
        found: String,
    },
    /// A data line is malformed (strict mode, or a structural error that
    /// lenient mode cannot quarantine, such as dictionary exhaustion).
    BadLine {
        /// 1-based line number.
        line: usize,
        /// What is wrong with it.
        reason: String,
    },
    /// Lenient mode: the quarantined fraction exceeded the configured
    /// bad-line budget. Carries the report accumulated so far.
    TooManyBadLines {
        /// Quarantine statistics up to the point of failure.
        report: IngestReport,
        /// The budget that was exceeded.
        max_bad_ratio: f64,
    },
    /// An attribute name cannot be represented (write side).
    UnencodableName {
        /// The offending name.
        name: String,
    },
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "I/O error: {e}"),
            CsvError::BadHeader { found } => {
                write!(f, "bad header: expected {CSV_HEADER:?}, found {found:?}")
            }
            CsvError::BadLine { line, reason } => write!(f, "line {line}: {reason}"),
            CsvError::TooManyBadLines {
                report,
                max_bad_ratio,
            } => write!(
                f,
                "too many malformed lines: {} of {} data lines quarantined \
                 (budget {:.4} = at most {:.0} lines)",
                report.bad_lines,
                report.data_lines,
                max_bad_ratio,
                max_bad_ratio * report.data_lines as f64
            ),
            CsvError::UnencodableName { name } => {
                write!(f, "attribute name {name:?} contains a delimiter")
            }
        }
    }
}

impl std::error::Error for CsvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CsvError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// How the reader treats malformed data lines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReadMode {
    /// The first malformed line aborts the import ([`CsvError::BadLine`]).
    Strict,
    /// Malformed lines are quarantined into the [`IngestReport`]; the
    /// import fails with [`CsvError::TooManyBadLines`] only when more than
    /// `max_bad_ratio` of the data lines are bad.
    Lenient {
        /// Highest tolerated `bad_lines / data_lines` fraction
        /// (e.g. `0.01` = 1%). Values ≥ 1.0 never fail the budget.
        max_bad_ratio: f64,
    },
}

/// Options for [`read_csv_opts`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadOptions {
    /// Strict or lenient handling of malformed lines.
    pub mode: ReadMode,
    /// How many quarantined-line samples to keep in the report.
    pub max_samples: usize,
}

impl Default for ReadOptions {
    fn default() -> Self {
        ReadOptions::strict()
    }
}

impl ReadOptions {
    /// Strict mode (the [`read_csv`] behavior).
    pub fn strict() -> ReadOptions {
        ReadOptions {
            mode: ReadMode::Strict,
            max_samples: 8,
        }
    }

    /// Lenient mode with the given bad-line budget.
    pub fn lenient(max_bad_ratio: f64) -> ReadOptions {
        ReadOptions {
            mode: ReadMode::Lenient { max_bad_ratio },
            max_samples: 8,
        }
    }
}

/// One quarantined line, kept as evidence in the [`IngestReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BadLineSample {
    /// 1-based line number in the input (the header is line 1).
    pub line: usize,
    /// Full diagnosis, naming the offending field where applicable.
    pub reason: String,
    /// The line's content, truncated to 120 characters.
    pub excerpt: String,
}

/// Structured account of a (lenient) ingest: what was kept, what was
/// quarantined, and why.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct IngestReport {
    /// Non-blank data lines seen (the header and blank lines don't count).
    pub data_lines: u64,
    /// Lines that parsed into sessions.
    pub ok_lines: u64,
    /// Lines quarantined as malformed.
    pub bad_lines: u64,
    /// Quarantined-line counts by reason category (stable, low-cardinality
    /// keys such as `"invalid epoch"` or `"non-finite play_duration_s"`).
    pub reasons: BTreeMap<String, u64>,
    /// The first few quarantined lines, with full diagnoses.
    pub samples: Vec<BadLineSample>,
    /// Quarantined-line counts per epoch, for the bad lines whose epoch
    /// field still parsed in range — lets downstream mark those epochs as
    /// degraded rather than silently complete.
    pub per_epoch_bad: BTreeMap<u32, u64>,
}

impl IngestReport {
    /// Fraction of data lines quarantined (0.0 for an empty input).
    pub fn bad_ratio(&self) -> f64 {
        if self.data_lines == 0 {
            0.0
        } else {
            self.bad_lines as f64 / self.data_lines as f64
        }
    }

    /// True when nothing was quarantined.
    pub fn is_clean(&self) -> bool {
        self.bad_lines == 0
    }

    fn record(
        &mut self,
        line_no: usize,
        category: &str,
        reason: String,
        raw: &str,
        max_samples: usize,
    ) {
        self.bad_lines += 1;
        *self.reasons.entry(category.to_owned()).or_insert(0) += 1;
        if self.samples.len() < max_samples {
            self.samples.push(BadLineSample {
                line: line_no,
                reason,
                excerpt: raw.chars().take(120).collect(),
            });
        }
        // Attribute the loss to an epoch when the epoch field is usable.
        if let Some(first) = raw.split(',').next() {
            if let Ok(epoch) = first.trim().parse::<u32>() {
                if epoch < MAX_EPOCHS {
                    *self.per_epoch_bad.entry(epoch).or_insert(0) += 1;
                }
            }
        }
    }
}

impl fmt::Display for IngestReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} of {} data lines quarantined ({:.3}%)",
            self.bad_lines,
            self.data_lines,
            100.0 * self.bad_ratio()
        )?;
        for (reason, count) in &self.reasons {
            write!(f, "\n  {count:>8}  {reason}")?;
        }
        for s in &self.samples {
            write!(f, "\n  e.g. line {}: {}", s.line, s.reason)?;
        }
        Ok(())
    }
}

fn check_name(name: &str) -> Result<&str, CsvError> {
    if name.contains(',') || name.contains('\n') || name.contains('\r') || name.contains('"') {
        return Err(CsvError::UnencodableName {
            name: name.to_owned(),
        });
    }
    Ok(name)
}

/// Write a dataset as CSV.
pub fn write_csv<W: Write>(dataset: &Dataset, mut out: W) -> Result<(), CsvError> {
    writeln!(out, "{CSV_HEADER}")?;
    for (epoch, data) in dataset.iter_epochs() {
        for (attrs, q) in data.iter() {
            write!(out, "{}", epoch.0)?;
            for key in AttrKey::ALL {
                let id = attrs.get(key);
                let name =
                    dataset
                        .value_name(key, id)
                        .ok_or_else(|| CsvError::UnencodableName {
                            name: format!("<unknown {key} id {id}>"),
                        })?;
                write!(out, ",{}", check_name(name)?)?;
            }
            writeln!(
                out,
                ",{},{},{},{},{}",
                u8::from(q.join_failed),
                q.join_time_ms,
                q.play_duration_s,
                q.buffering_s,
                q.avg_bitrate_kbps
            )?;
        }
    }
    Ok(())
}

/// A parse failure for one data line: a stable category (for per-reason
/// counting) plus the full diagnosis.
struct LineFault {
    category: &'static str,
    message: String,
}

impl LineFault {
    fn new(category: &'static str) -> LineFault {
        LineFault {
            category,
            message: category.to_owned(),
        }
    }

    fn with_message(category: &'static str, message: String) -> LineFault {
        LineFault { category, message }
    }
}

struct ParsedLine {
    epoch: u32,
    names: [String; 7],
    quality: QualityMeasurement,
}

/// The per-numeric-field checks name the offending *field*, not just the
/// line: operators triaging a dead-letter file need to know whether a feed
/// emits NaN buffering or negative bitrates.
fn parse_numeric(
    raw: &str,
    invalid: &'static str,
    non_finite: &'static str,
    negative: &'static str,
) -> Result<f32, LineFault> {
    let value: f32 = raw.trim().parse().map_err(|_| LineFault::new(invalid))?;
    if !value.is_finite() {
        return Err(LineFault::new(non_finite));
    }
    if value < 0.0 {
        return Err(LineFault::new(negative));
    }
    Ok(value)
}

fn parse_data_line(line: &str) -> Result<ParsedLine, LineFault> {
    if line.trim() == CSV_HEADER {
        return Err(LineFault::new("duplicate header"));
    }
    let fields: Vec<&str> = line.split(',').collect();
    if fields.len() != 13 {
        return Err(LineFault::with_message(
            "wrong field count",
            format!("expected 13 fields, found {}", fields.len()),
        ));
    }
    let epoch: u32 = fields[0]
        .trim()
        .parse()
        .map_err(|_| LineFault::new("invalid epoch"))?;
    // A dataset allocates one bucket per epoch up to the maximum id, so
    // bound it: a fat-fingered epoch like 4294967295 must not allocate
    // four billion buckets (or overflow `max_epoch + 1`).
    if epoch >= MAX_EPOCHS {
        return Err(LineFault::with_message(
            "epoch out of range",
            format!("invalid epoch (exceeds the {MAX_EPOCHS}-epoch bound)"),
        ));
    }
    let names: [String; 7] = std::array::from_fn(|i| fields[1 + i].trim().to_owned());
    for (i, name) in names.iter().enumerate() {
        if name.is_empty() {
            return Err(LineFault::with_message(
                "empty attribute name",
                format!("empty {} name", AttrKey::from_index(i)),
            ));
        }
    }
    let join_failed = match fields[8].trim() {
        "0" | "false" => false,
        "1" | "true" => true,
        _ => return Err(LineFault::new("invalid join_failed")),
    };
    let join_time_ms: u32 = fields[9]
        .trim()
        .parse()
        .map_err(|_| LineFault::new("invalid join_time_ms"))?;
    let play = parse_numeric(
        fields[10],
        "invalid play_duration_s",
        "non-finite play_duration_s",
        "negative play_duration_s",
    )?;
    let buffering = parse_numeric(
        fields[11],
        "invalid buffering_s",
        "non-finite buffering_s",
        "negative buffering_s",
    )?;
    let bitrate = parse_numeric(
        fields[12],
        "invalid avg_bitrate_kbps",
        "non-finite avg_bitrate_kbps",
        "negative avg_bitrate_kbps",
    )?;
    let quality = if join_failed {
        QualityMeasurement::failed()
    } else {
        QualityMeasurement::joined(join_time_ms, play, buffering, bitrate)
    };
    Ok(ParsedLine {
        epoch,
        names,
        quality,
    })
}

/// One validated session parsed from a single data line, before attribute
/// names are interned into any particular dataset's dictionaries.
///
/// This is the building block for streaming ingest: a live service
/// validates each arriving line with [`parse_session_line`], buffers the
/// typed result, and interns it into its long-lived [`Dataset`] at commit
/// time — no CSV re-serialization round trip.
#[derive(Debug, Clone)]
pub struct ParsedSession {
    /// Epoch the session belongs to (already bounds-checked against
    /// [`MAX_EPOCHS`]).
    pub epoch: EpochId,
    /// The seven attribute names in [`AttrKey::ALL`] order.
    pub names: [String; 7],
    /// The session's quality measurement.
    pub quality: QualityMeasurement,
}

impl ParsedSession {
    /// Intern this session's attribute names into `dataset`'s dictionaries
    /// and return the packed attribute tuple.
    ///
    /// Fails (rather than panicking in `intern`) when a dimension's packed
    /// id space is exhausted — the same capacity limit [`read_csv_opts`]
    /// surfaces as a structural [`CsvError::BadLine`].
    pub fn intern_into(&self, dataset: &mut Dataset) -> Result<SessionAttrs, String> {
        let mut values = [0u32; 7];
        for (i, name) in self.names.iter().enumerate() {
            let key = AttrKey::from_index(i);
            if dataset.dict(key).id(name).is_none()
                && dataset.dict(key).len() as u64 > u64::from(crate::attr::max_value(i))
            {
                return Err(format!(
                    "too many distinct {key} values (limit {})",
                    u64::from(crate::attr::max_value(i)) + 1
                ));
            }
            values[i] = dataset.intern(key, name);
        }
        Ok(SessionAttrs::new(values))
    }
}

/// Validate and parse one CSV data line into a typed [`ParsedSession`].
///
/// Applies exactly the per-line checks of [`read_csv_opts`] (field count,
/// epoch bound, attribute names, quality-field sanity), so a line accepted
/// here is a line the batch reader would accept. On failure returns
/// `(category, message)`: a stable category for per-reason counting plus
/// the full diagnosis (the same pair quarantine reports are built from).
pub fn parse_session_line(line: &str) -> Result<ParsedSession, (&'static str, String)> {
    match parse_data_line(line) {
        Ok(parsed) => Ok(ParsedSession {
            epoch: EpochId(parsed.epoch),
            names: parsed.names,
            quality: parsed.quality,
        }),
        Err(fault) => Err((fault.category, fault.message)),
    }
}

/// Read a dataset from CSV with strict error handling; see [`read_csv_opts`].
pub fn read_csv<R: BufRead>(input: R) -> Result<Dataset, CsvError> {
    read_csv_opts(input, &ReadOptions::strict(), None).map(|(dataset, _)| dataset)
}

/// Read a dataset from CSV. Attribute dictionaries are built in
/// first-appearance order; the epoch count is `max epoch + 1`.
///
/// In [`ReadMode::Lenient`], malformed lines are quarantined into the
/// returned [`IngestReport`] (and, when `dead_letter` is given, echoed to
/// it verbatim for later triage) instead of aborting; the import fails
/// with [`CsvError::TooManyBadLines`] once the quarantined fraction
/// exceeds the budget. A missing or wrong header and dictionary
/// exhaustion (too many distinct attribute values for a dimension's
/// packed id space) are structural failures in both modes.
pub fn read_csv_opts<R: BufRead>(
    input: R,
    options: &ReadOptions,
    mut dead_letter: Option<&mut dyn Write>,
) -> Result<(Dataset, IngestReport), CsvError> {
    let _obs = obs::global().span(obs::Stage::Ingest);
    let mut lines = input.lines().enumerate();
    let (_, header) = lines.next().ok_or_else(|| CsvError::BadHeader {
        found: "<empty input>".into(),
    })?;
    let header = header?;
    // Tolerate a UTF-8 byte-order mark from spreadsheet exports.
    if header.trim_start_matches('\u{feff}').trim() != CSV_HEADER {
        return Err(CsvError::BadHeader { found: header });
    }

    let mut report = IngestReport::default();

    // Two passes are avoided by buffering parsed rows and sizing the
    // dataset afterwards.
    struct Row {
        line: usize,
        epoch: u32,
        names: [String; 7],
        quality: QualityMeasurement,
    }
    let mut rows: Vec<Row> = Vec::new();
    let mut max_epoch = 0u32;
    for (idx, line) in lines {
        let line_no = idx + 1;
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        report.data_lines += 1;
        match parse_data_line(&line) {
            Ok(parsed) => {
                report.ok_lines += 1;
                max_epoch = max_epoch.max(parsed.epoch);
                rows.push(Row {
                    line: line_no,
                    epoch: parsed.epoch,
                    names: parsed.names,
                    quality: parsed.quality,
                });
            }
            Err(fault) => match options.mode {
                ReadMode::Strict => {
                    return Err(CsvError::BadLine {
                        line: line_no,
                        reason: fault.message,
                    });
                }
                ReadMode::Lenient { .. } => {
                    report.record(
                        line_no,
                        fault.category,
                        fault.message,
                        &line,
                        options.max_samples,
                    );
                    if let Some(sink) = dead_letter.as_mut() {
                        writeln!(sink, "{line}")?;
                    }
                }
            },
        }
    }
    if let ReadMode::Lenient { max_bad_ratio } = options.mode {
        // Strictly greater-than: the budget is INCLUSIVE, so a trace with
        // bad_lines == max_bad_ratio * data_lines (exactly on budget) is
        // accepted. A regression test pins this boundary.
        if report.bad_lines as f64 > max_bad_ratio * report.data_lines as f64 {
            return Err(CsvError::TooManyBadLines {
                report,
                max_bad_ratio,
            });
        }
    }

    let mut dataset = Dataset::new(
        if rows.is_empty() { 0 } else { max_epoch + 1 },
        DatasetMeta {
            name: "csv-import".into(),
            description: format!("{} sessions imported from CSV", rows.len()),
            seed: None,
        },
    );
    for row in rows {
        let mut values = [0u32; 7];
        for (i, name) in row.names.iter().enumerate() {
            let key = AttrKey::from_index(i);
            // Intern would panic when a dimension's packed id space is
            // exhausted; surface it as a parse error instead. This is a
            // capacity limit, not line corruption, so it is fatal in both
            // modes — quarantining would silently drop every later session
            // that introduces a new value.
            if dataset.dict(key).id(name).is_none()
                && dataset.dict(key).len() as u64 > u64::from(crate::attr::max_value(i))
            {
                return Err(CsvError::BadLine {
                    line: row.line,
                    reason: format!(
                        "too many distinct {key} values (limit {})",
                        u64::from(crate::attr::max_value(i)) + 1
                    ),
                });
            }
            values[i] = dataset.intern(key, name);
        }
        dataset.push(SessionRecord::new(
            EpochId(row.epoch),
            SessionAttrs::new(values),
            row.quality,
        ));
    }
    let rec = obs::global();
    rec.add(obs::Counter::SessionsIngested, report.ok_lines);
    rec.add(obs::Counter::LinesQuarantined, report.bad_lines);
    Ok((dataset, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn tiny() -> Dataset {
        let mut ds = Dataset::new(2, DatasetMeta::default());
        let mk = |ds: &mut Dataset, names: [&str; 7]| {
            let values: [u32; 7] =
                std::array::from_fn(|i| ds.intern(AttrKey::from_index(i), names[i]));
            SessionAttrs::new(values)
        };
        let a = mk(
            &mut ds,
            [
                "AS7922", "cdn-a", "site-1", "VoD", "HTML5", "Chrome", "Cable",
            ],
        );
        let b = mk(
            &mut ds,
            ["AS3320", "cdn-b", "site-2", "Live", "Flash", "MSIE", "DSL"],
        );
        ds.push(SessionRecord::new(
            EpochId(0),
            a,
            QualityMeasurement::joined(812, 294.5, 0.0, 2280.0),
        ));
        ds.push(SessionRecord::new(
            EpochId(1),
            b,
            QualityMeasurement::failed(),
        ));
        ds
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let ds = tiny();
        let mut buf = Vec::new();
        write_csv(&ds, &mut buf).expect("write");
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with(CSV_HEADER));
        assert!(text.contains("AS7922"));

        let back = read_csv(BufReader::new(&buf[..])).expect("read");
        assert_eq!(back.num_epochs(), ds.num_epochs());
        assert_eq!(back.num_sessions(), ds.num_sessions());
        let orig: Vec<_> = ds.iter_sessions().collect();
        let new: Vec<_> = back.iter_sessions().collect();
        for (a, b) in orig.iter().zip(&new) {
            assert_eq!(a.epoch, b.epoch);
            assert_eq!(a.quality, b.quality);
            for key in AttrKey::ALL {
                assert_eq!(
                    ds.value_name(key, a.attrs.get(key)),
                    back.value_name(key, b.attrs.get(key)),
                );
            }
        }
    }

    #[test]
    fn rejects_bad_header() {
        let err = read_csv(BufReader::new(b"nope\n".as_slice())).unwrap_err();
        assert!(matches!(err, CsvError::BadHeader { .. }));
        assert!(err.to_string().contains("bad header"));
    }

    #[test]
    fn rejects_malformed_lines_with_location() {
        let input = format!("{CSV_HEADER}\n0,a,b,c,VoD,p,w,Cable,0,100,1.0,0.0\n");
        let err = read_csv(BufReader::new(input.as_bytes())).unwrap_err();
        match err {
            CsvError::BadLine { line, reason } => {
                assert_eq!(line, 2);
                assert!(reason.contains("13 fields"));
            }
            other => panic!("wrong error: {other}"),
        }

        let input = format!("{CSV_HEADER}\nX,a,b,c,VoD,p,w,Cable,0,100,1.0,0.0,500\n");
        let err = read_csv(BufReader::new(input.as_bytes())).unwrap_err();
        assert!(err.to_string().contains("invalid epoch"));

        let input = format!("{CSV_HEADER}\n0,a,b,c,VoD,p,w,Cable,2,100,1.0,0.0,500\n");
        let err = read_csv(BufReader::new(input.as_bytes())).unwrap_err();
        assert!(err.to_string().contains("invalid join_failed"));

        let input = format!("{CSV_HEADER}\n0,a,b,c,VoD,p,w,Cable,0,100,-1.0,0.0,500\n");
        let err = read_csv(BufReader::new(input.as_bytes())).unwrap_err();
        assert!(err.to_string().contains("negative"));
    }

    #[test]
    fn bad_value_reasons_name_the_field() {
        let cases = [
            ("0,a,b,c,VoD,p,w,Cable,0,100,NaN,0.0,500", "play_duration_s"),
            ("0,a,b,c,VoD,p,w,Cable,0,100,1.0,inf,500", "buffering_s"),
            (
                "0,a,b,c,VoD,p,w,Cable,0,100,1.0,0.0,-500",
                "avg_bitrate_kbps",
            ),
            (
                "0,a,b,c,VoD,p,w,Cable,0,100,-2.5,0.0,500",
                "play_duration_s",
            ),
            ("0,a,,c,VoD,p,w,Cable,0,100,1.0,0.0,500", "CDN"),
        ];
        for (line, field) in cases {
            let input = format!("{CSV_HEADER}\n{line}\n");
            let err = read_csv(BufReader::new(input.as_bytes())).unwrap_err();
            assert!(
                err.to_string().contains(field),
                "error for {line:?} should name {field}: {err}"
            );
        }
    }

    #[test]
    fn accepts_crlf_bom_and_trailing_blank_line() {
        let input =
            format!("\u{feff}{CSV_HEADER}\r\n3,a,b,c,VoD,p,w,Cable,0,100,1.0,0.0,500\r\n\r\n");
        let ds = read_csv(BufReader::new(input.as_bytes())).expect("read");
        assert_eq!(ds.num_sessions(), 1);
        assert_eq!(ds.num_epochs(), 4);
        let s = ds.iter_sessions().next().unwrap();
        assert_eq!(s.epoch, EpochId(3));
        assert_eq!(
            ds.value_name(AttrKey::Asn, s.attrs.get(AttrKey::Asn)),
            Some("a")
        );
    }

    #[test]
    fn lenient_quarantines_and_recovers() {
        let input = format!(
            "{CSV_HEADER}\n\
             0,a,b,c,VoD,p,w,Cable,0,100,1.0,0.0,500\n\
             1,oops\n\
             {CSV_HEADER}\n\
             1,a,b,c,VoD,p,w,Cable,0,100,NaN,0.0,500\n\
             1,a,b,c,VoD,p,w,Cable,0,100,2.0,0.0,600\n"
        );
        let mut dead = Vec::new();
        let (ds, report) = read_csv_opts(
            BufReader::new(input.as_bytes()),
            &ReadOptions::lenient(0.9),
            Some(&mut dead),
        )
        .expect("lenient read succeeds");
        assert_eq!(ds.num_sessions(), 2);
        assert_eq!(ds.num_epochs(), 2);
        assert_eq!(report.data_lines, 5);
        assert_eq!(report.ok_lines, 2);
        assert_eq!(report.bad_lines, 3);
        assert!((report.bad_ratio() - 0.6).abs() < 1e-12);
        assert_eq!(report.reasons.get("wrong field count"), Some(&1));
        assert_eq!(report.reasons.get("duplicate header"), Some(&1));
        assert_eq!(report.reasons.get("non-finite play_duration_s"), Some(&1));
        assert_eq!(report.samples.len(), 3);
        assert_eq!(report.samples[0].line, 3);
        // Two of the bad lines carried a parseable epoch field.
        assert_eq!(report.per_epoch_bad.get(&1), Some(&2));
        // The dead-letter sink got the quarantined lines verbatim.
        let dead = String::from_utf8(dead).unwrap();
        assert_eq!(dead.lines().count(), 3);
        assert!(dead.contains("1,oops"));
        // Display summarizes without panicking.
        assert!(report.to_string().contains("quarantined"));
    }

    #[test]
    fn lenient_budget_exceeded_is_a_typed_error() {
        let input = format!(
            "{CSV_HEADER}\n\
             0,a,b,c,VoD,p,w,Cable,0,100,1.0,0.0,500\n\
             garbage\n\
             more garbage\n"
        );
        let err = read_csv_opts(
            BufReader::new(input.as_bytes()),
            &ReadOptions::lenient(0.5),
            None,
        )
        .unwrap_err();
        match err {
            CsvError::TooManyBadLines {
                report,
                max_bad_ratio,
            } => {
                assert_eq!(report.bad_lines, 2);
                assert_eq!(report.data_lines, 3);
                assert_eq!(max_bad_ratio, 0.5);
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn lenient_budget_boundary_is_inclusive() {
        // 4 data lines, 1 bad: bad_ratio is exactly 0.25. The budget is
        // inclusive — exactly on budget must be ACCEPTED (the check is
        // strictly greater-than), and the tiniest budget below it must
        // reject. This pins the boundary so a future `>=` regression or a
        // ratio-vs-count rewrite can't silently move it.
        let input = format!(
            "{CSV_HEADER}\n\
             0,a,b,c,VoD,p,w,Cable,0,100,1.0,0.0,500\n\
             0,a,b,c,VoD,p,w,Cable,0,100,1.5,0.0,500\n\
             garbage\n\
             1,a,b,c,VoD,p,w,Cable,0,100,2.0,0.0,600\n"
        );
        let (ds, report) = read_csv_opts(
            BufReader::new(input.as_bytes()),
            &ReadOptions::lenient(0.25),
            None,
        )
        .expect("exactly-on-budget ingest is accepted");
        assert_eq!(report.data_lines, 4);
        assert_eq!(report.bad_lines, 1);
        assert!((report.bad_ratio() - 0.25).abs() < 1e-12);
        assert_eq!(ds.num_sessions(), 3);

        let err = read_csv_opts(
            BufReader::new(input.as_bytes()),
            &ReadOptions::lenient(0.2499),
            None,
        )
        .unwrap_err();
        assert!(matches!(err, CsvError::TooManyBadLines { .. }));
    }

    #[test]
    fn strict_mode_still_fails_on_first_bad_line() {
        let input = format!("{CSV_HEADER}\ngarbage\n0,a,b,c,VoD,p,w,Cable,0,100,1.0,0.0,500\n");
        let err = read_csv_opts(
            BufReader::new(input.as_bytes()),
            &ReadOptions::strict(),
            None,
        )
        .unwrap_err();
        assert!(matches!(err, CsvError::BadLine { line: 2, .. }));
    }

    #[test]
    fn rejects_unencodable_names() {
        let mut ds = Dataset::new(1, DatasetMeta::default());
        let values: [u32; 7] = std::array::from_fn(|i| {
            ds.intern(
                AttrKey::from_index(i),
                if i == 1 { "evil,name" } else { "ok" },
            )
        });
        ds.push(SessionRecord::new(
            EpochId(0),
            SessionAttrs::new(values),
            QualityMeasurement::failed(),
        ));
        let err = write_csv(&ds, Vec::new()).unwrap_err();
        assert!(matches!(err, CsvError::UnencodableName { .. }));
    }

    #[test]
    fn empty_input_reads_as_empty_dataset() {
        let input = format!("{CSV_HEADER}\n");
        let ds = read_csv(BufReader::new(input.as_bytes())).expect("read");
        assert_eq!(ds.num_epochs(), 0);
        assert_eq!(ds.num_sessions(), 0);
        // Blank lines are skipped.
        let input = format!("{CSV_HEADER}\n\n\n");
        let ds = read_csv(BufReader::new(input.as_bytes())).expect("read");
        assert_eq!(ds.num_sessions(), 0);
    }

    #[test]
    fn failed_sessions_zero_playback_fields() {
        let input = format!("{CSV_HEADER}\n3,a,b,c,VoD,p,w,Cable,1,9999,123.0,4.0,500\n");
        let ds = read_csv(BufReader::new(input.as_bytes())).expect("read");
        let s = ds.iter_sessions().next().unwrap();
        assert!(s.quality.join_failed);
        // Playback fields for a failed join are normalized away.
        assert_eq!(s.quality.play_duration_s, 0.0);
        assert_eq!(s.quality.join_time_ms, 0);
        assert_eq!(s.epoch, EpochId(3));
        assert_eq!(ds.num_epochs(), 4);
    }
}
