//! The epoch-bucketed session container and attribute dictionaries.
//!
//! Attribute values (CDN names, ASN numbers, site names, ...) are interned
//! into dense `u32` ids per dimension so that sessions stay compact and
//! cluster keys pack into a `u64`. The [`Dataset`] owns the dictionaries and
//! the per-epoch columnar session storage.

use crate::attr::{max_value, AttrKey, SessionAttrs};
use crate::epoch::EpochId;
use crate::metric::{Metric, QualityMeasurement, Thresholds};
use crate::session::SessionRecord;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// String interner for one attribute dimension.
///
/// Ids are dense, assigned in first-seen order, and bounded by the packed
/// bit width of the dimension (see [`crate::attr::VALUE_BITS`]).
///
/// Each name is stored once as an `Arc<str>` shared between the id → name
/// vector and the name → id index, so interning a new value costs a single
/// allocation and lookups of known values cost none.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AttrDict {
    #[serde(with = "arc_str_vec")]
    names: Vec<Arc<str>>,
    #[serde(skip)]
    index: HashMap<Arc<str>, u32>,
}

/// Serde for `Vec<Arc<str>>` as a plain sequence of strings (the workspace
/// serde build has no `rc` feature).
mod arc_str_vec {
    use serde::{Deserialize, Deserializer, Serializer};
    use std::sync::Arc;

    pub fn serialize<S: Serializer>(names: &[Arc<str>], s: S) -> Result<S::Ok, S::Error> {
        s.collect_seq(names.iter().map(|n| &**n))
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Vec<Arc<str>>, D::Error> {
        Ok(Vec::<String>::deserialize(d)?
            .into_iter()
            .map(Into::into)
            .collect())
    }
}

impl AttrDict {
    /// Empty dictionary.
    pub fn new() -> AttrDict {
        AttrDict::default()
    }

    /// Intern `name`, returning its id (existing or freshly assigned).
    ///
    /// # Panics
    /// Panics when the dimension's id space (per `dim`'s packed width) is
    /// exhausted.
    pub fn intern(&mut self, dim: usize, name: &str) -> u32 {
        // Hits dominate, and `get` by `&str` is allocation-free (`Arc<str>:
        // Borrow<str>`) — the entry API would have to allocate a key per
        // call just to probe.
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = u32::try_from(self.names.len()).expect("dictionary overflow");
        assert!(
            id <= max_value(dim),
            "attribute dimension {dim} overflows its packed width ({} values)",
            max_value(dim) as u64 + 1
        );
        let shared: Arc<str> = Arc::from(name);
        self.names.push(Arc::clone(&shared));
        self.index.insert(shared, id);
        id
    }

    /// Look up an id by name without interning.
    pub fn id(&self, name: &str) -> Option<u32> {
        self.index.get(name).copied()
    }

    /// The name of an id, or `None` when out of range.
    pub fn name(&self, id: u32) -> Option<&str> {
        self.names.get(id as usize).map(|s| &**s)
    }

    /// Number of interned values.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no values are interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Rebuild the name → id index (needed after deserialization, where the
    /// reverse index is skipped).
    fn rebuild_index(&mut self) {
        self.index = self
            .names
            .iter()
            .enumerate()
            .map(|(i, n)| (Arc::clone(n), i as u32))
            .collect();
    }
}

/// Columnar per-epoch session storage.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EpochData {
    /// Attribute vectors, one per session.
    pub attrs: Vec<SessionAttrs>,
    /// Quality measurements, parallel to `attrs`.
    pub quality: Vec<QualityMeasurement>,
}

impl EpochData {
    /// Number of sessions in the epoch.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// True when the epoch holds no sessions.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Append one session.
    pub fn push(&mut self, attrs: SessionAttrs, quality: QualityMeasurement) {
        self.attrs.push(attrs);
        self.quality.push(quality);
    }

    /// Iterate `(attrs, quality)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&SessionAttrs, &QualityMeasurement)> {
        self.attrs.iter().zip(self.quality.iter())
    }

    /// Fraction of sessions that are problems on `metric` (the epoch's
    /// *global problem ratio* for that metric). `None` for an empty epoch.
    pub fn global_problem_ratio(&self, thresholds: &Thresholds, metric: Metric) -> Option<f64> {
        if self.is_empty() {
            return None;
        }
        let problems = self
            .quality
            .iter()
            .filter(|q| thresholds.is_problem(q, metric))
            .count();
        Some(problems as f64 / self.len() as f64)
    }
}

/// Provenance metadata for a dataset.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetMeta {
    /// Human-readable scenario name.
    pub name: String,
    /// Free-form description (generator parameters, etc.).
    pub description: String,
    /// RNG seed used to generate the data, when synthetic.
    pub seed: Option<u64>,
}

/// A full trace: attribute dictionaries plus epoch-bucketed sessions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    /// Per-dimension dictionaries, indexed by [`AttrKey::index`].
    dicts: [AttrDict; 7],
    /// Per-epoch session storage; index = epoch id.
    epochs: Vec<EpochData>,
    /// Provenance.
    pub meta: DatasetMeta,
}

impl Dataset {
    /// Empty dataset spanning `num_epochs` hourly epochs.
    pub fn new(num_epochs: u32, meta: DatasetMeta) -> Dataset {
        Dataset {
            dicts: Default::default(),
            epochs: (0..num_epochs).map(|_| EpochData::default()).collect(),
            meta,
        }
    }

    /// Number of epochs the trace spans.
    pub fn num_epochs(&self) -> u32 {
        self.epochs.len() as u32
    }

    /// Total session count across all epochs.
    pub fn num_sessions(&self) -> usize {
        self.epochs.iter().map(EpochData::len).sum()
    }

    /// Intern an attribute value name, returning its id.
    pub fn intern(&mut self, key: AttrKey, name: &str) -> u32 {
        self.dicts[key.index()].intern(key.index(), name)
    }

    /// The dictionary for one attribute dimension.
    pub fn dict(&self, key: AttrKey) -> &AttrDict {
        &self.dicts[key.index()]
    }

    /// Resolve an attribute value id to its name; `"?<id>"` style fallback
    /// is intentionally *not* provided — absent ids are a caller bug.
    pub fn value_name(&self, key: AttrKey, id: u32) -> Option<&str> {
        self.dicts[key.index()].name(id)
    }

    /// Append a session to its epoch.
    ///
    /// # Panics
    /// Panics when the epoch is outside the trace.
    pub fn push(&mut self, record: SessionRecord) {
        let idx = record.epoch.0 as usize;
        assert!(
            idx < self.epochs.len(),
            "epoch {} outside trace of {} epochs",
            record.epoch.0,
            self.epochs.len()
        );
        self.epochs[idx].push(record.attrs, record.quality);
    }

    /// Grow the trace so it spans at least `num_epochs` epochs, appending
    /// empty epochs as needed. Never shrinks.
    ///
    /// Streaming ingest uses this before [`push`](Dataset::push): a live
    /// trace has no known final epoch count, so arriving sessions extend
    /// the trace instead of panicking against a fixed bound.
    pub fn ensure_epochs(&mut self, num_epochs: u32) {
        if num_epochs as usize > self.epochs.len() {
            self.epochs
                .resize_with(num_epochs as usize, EpochData::default);
        }
    }

    /// The sessions of one epoch.
    pub fn epoch(&self, epoch: EpochId) -> &EpochData {
        &self.epochs[epoch.0 as usize]
    }

    /// Replace one epoch's sessions wholesale (moves the columnar storage,
    /// the bulk path used by the parallel generator).
    ///
    /// # Panics
    /// Panics when the epoch is outside the trace or already populated.
    pub fn set_epoch(&mut self, epoch: EpochId, data: EpochData) {
        let idx = epoch.0 as usize;
        assert!(
            idx < self.epochs.len(),
            "epoch {} outside trace of {} epochs",
            epoch.0,
            self.epochs.len()
        );
        assert!(
            self.epochs[idx].is_empty(),
            "epoch {} already holds sessions",
            epoch.0
        );
        self.epochs[idx] = data;
    }

    /// Replace one epoch's sessions wholesale even when already
    /// populated, returning the previous data. This is the
    /// memory-pressure seam: the resilience layer's session sampler swaps
    /// a thinned epoch in for the original.
    ///
    /// # Panics
    /// Panics when the epoch is outside the trace.
    pub fn replace_epoch(&mut self, epoch: EpochId, data: EpochData) -> EpochData {
        let idx = epoch.0 as usize;
        assert!(
            idx < self.epochs.len(),
            "epoch {} outside trace of {} epochs",
            epoch.0,
            self.epochs.len()
        );
        std::mem::replace(&mut self.epochs[idx], data)
    }

    /// Iterate `(epoch, data)` pairs.
    pub fn iter_epochs(&self) -> impl Iterator<Item = (EpochId, &EpochData)> {
        self.epochs
            .iter()
            .enumerate()
            .map(|(i, e)| (EpochId(i as u32), e))
    }

    /// Iterate all sessions as owned [`SessionRecord`]s (mostly for tests
    /// and small exports; the analysis pipeline works columnar).
    pub fn iter_sessions(&self) -> impl Iterator<Item = SessionRecord> + '_ {
        self.iter_epochs().flat_map(|(epoch, data)| {
            data.iter()
                .map(move |(a, q)| SessionRecord::new(epoch, *a, *q))
        })
    }

    /// Restore internal indexes after deserialization.
    ///
    /// # Panics
    /// Panics when a deserialized dictionary exceeds its dimension's packed
    /// id width or a stored session references an id outside its
    /// dictionary — either means the input was corrupted or hand-edited.
    pub fn after_deserialize(&mut self) {
        for (dim, d) in self.dicts.iter_mut().enumerate() {
            assert!(
                d.len() as u64 <= u64::from(crate::attr::max_value(dim)) + 1,
                "deserialized dictionary {dim} exceeds its packed width"
            );
            d.rebuild_index();
        }
        for data in &self.epochs {
            for attrs in &data.attrs {
                for (dim, v) in attrs.values.iter().enumerate() {
                    assert!(
                        (*v as usize) < self.dicts[dim].len(),
                        "session references undefined id {v} in dimension {dim}"
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttrMask;

    fn tiny() -> Dataset {
        let mut ds = Dataset::new(2, DatasetMeta::default());
        let asn = ds.intern(AttrKey::Asn, "AS7922");
        let cdn = ds.intern(AttrKey::Cdn, "cdn-alpha");
        let site = ds.intern(AttrKey::Site, "site-1");
        let vod = ds.intern(AttrKey::VodOrLive, "VoD");
        let player = ds.intern(AttrKey::PlayerType, "HTML5");
        let browser = ds.intern(AttrKey::Browser, "Chrome");
        let conn = ds.intern(AttrKey::ConnType, "Cable");
        let attrs = SessionAttrs::new([asn, cdn, site, vod, player, browser, conn]);
        ds.push(SessionRecord::new(
            EpochId(0),
            attrs,
            QualityMeasurement::joined(500, 300.0, 0.0, 3000.0),
        ));
        ds.push(SessionRecord::new(
            EpochId(0),
            attrs,
            QualityMeasurement::joined(500, 100.0, 50.0, 3000.0),
        ));
        ds.push(SessionRecord::new(
            EpochId(1),
            attrs,
            QualityMeasurement::failed(),
        ));
        ds
    }

    #[test]
    fn interning_is_stable() {
        let mut ds = Dataset::new(1, DatasetMeta::default());
        let a = ds.intern(AttrKey::Cdn, "x");
        let b = ds.intern(AttrKey::Cdn, "y");
        let a2 = ds.intern(AttrKey::Cdn, "x");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(ds.value_name(AttrKey::Cdn, a), Some("x"));
        assert_eq!(ds.dict(AttrKey::Cdn).len(), 2);
        assert_eq!(ds.dict(AttrKey::Cdn).id("y"), Some(b));
        assert_eq!(ds.dict(AttrKey::Cdn).id("z"), None);
    }

    #[test]
    fn intern_shares_one_allocation_per_name() {
        let mut d = AttrDict::new();
        let id = d.intern(0, "cdn-alpha");
        assert_eq!(d.intern(0, "cdn-alpha"), id);
        // The id → name vector and the name → id index share one `Arc`.
        let (key, _) = d.index.get_key_value("cdn-alpha").unwrap();
        assert!(Arc::ptr_eq(key, &d.names[id as usize]));
        assert_eq!(Arc::strong_count(key), 2);
    }

    #[test]
    fn epoch_bucketing_and_counts() {
        let ds = tiny();
        assert_eq!(ds.num_epochs(), 2);
        assert_eq!(ds.num_sessions(), 3);
        assert_eq!(ds.epoch(EpochId(0)).len(), 2);
        assert_eq!(ds.epoch(EpochId(1)).len(), 1);
        assert_eq!(ds.iter_sessions().count(), 3);
    }

    #[test]
    fn global_problem_ratio() {
        let ds = tiny();
        let t = Thresholds::default();
        let e0 = ds.epoch(EpochId(0));
        // Session 2 has buffering ratio 50/150 = 0.33 > 0.05.
        assert_eq!(e0.global_problem_ratio(&t, Metric::BufRatio), Some(0.5));
        assert_eq!(e0.global_problem_ratio(&t, Metric::JoinFailure), Some(0.0));
        let e1 = ds.epoch(EpochId(1));
        assert_eq!(e1.global_problem_ratio(&t, Metric::JoinFailure), Some(1.0));
        let empty = EpochData::default();
        assert_eq!(empty.global_problem_ratio(&t, Metric::BufRatio), None);
    }

    #[test]
    #[should_panic(expected = "outside trace")]
    fn push_rejects_out_of_range_epoch() {
        let mut ds = Dataset::new(1, DatasetMeta::default());
        ds.push(SessionRecord::new(
            EpochId(5),
            SessionAttrs::new([0; 7]),
            QualityMeasurement::failed(),
        ));
    }

    #[test]
    fn serde_roundtrip_rebuilds_index() {
        let ds = tiny();
        let json = serde_json::to_string(&ds).unwrap();
        let mut back: Dataset = serde_json::from_str(&json).unwrap();
        back.after_deserialize();
        assert_eq!(back.num_sessions(), 3);
        assert_eq!(back.dict(AttrKey::Cdn).id("cdn-alpha"), Some(0));
        // Leaf keys survive the roundtrip.
        let orig: Vec<_> = ds.iter_sessions().map(|s| s.attrs.leaf_key()).collect();
        let new: Vec<_> = back.iter_sessions().map(|s| s.attrs.leaf_key()).collect();
        assert_eq!(orig, new);
        assert!(orig[0].mask() == AttrMask::FULL);
    }
}
