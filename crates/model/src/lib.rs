//! # vqlens-model
//!
//! Core domain model for the vqlens video-quality analysis system, a
//! reproduction of *"Shedding Light on the Structure of Internet Video
//! Quality Problems in the Wild"* (Jiang et al., CoNEXT 2013).
//!
//! This crate defines the vocabulary every other crate speaks:
//!
//! * [`attr`] — the seven client/session attributes (ASN, CDN, Site,
//!   VoD-or-Live, player, browser, connection type), attribute subset masks,
//!   and the packed [`attr::ClusterKey`] that identifies a cluster — a group
//!   of sessions sharing the values of a subset of attributes.
//! * [`metric`] — the four quality metrics (buffering ratio, average
//!   bitrate, join time, join failure), per-session measurements, and the
//!   problem-session thresholds from the paper (§2).
//! * [`epoch`] — one-hour analysis epochs and week arithmetic.
//! * [`session`] — a single viewing-session record.
//! * [`dataset`] — the epoch-bucketed session container with attribute
//!   dictionaries (string interning) used by the whole pipeline.
//! * [`csv`] — the CSV interchange format, the bridge for analyzing *real*
//!   telemetry with this library.
//!
//! The model is deliberately free of any analysis logic: clustering lives in
//! `vqlens-cluster`, synthesis in `vqlens-synth`, and so on.
//!
//! **Paper map:** §2 — the dataset, the seven session attributes, the four
//! quality metrics, and the problem-session thresholds every later section
//! builds on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attr;
pub mod csv;
pub mod dataset;
pub mod epoch;
pub mod metric;
pub mod session;

pub use attr::{AttrKey, AttrMask, ClusterKey, SessionAttrs};
pub use dataset::{AttrDict, Dataset, DatasetMeta, EpochData};
pub use epoch::EpochId;
pub use metric::{Metric, ProblemFlags, QualityMeasurement, Thresholds};
pub use session::SessionRecord;
