//! Session attributes, attribute subset masks, and packed cluster keys.
//!
//! The paper associates every session with seven attributes (§2). Clusters
//! are defined over the subset lattice of these attributes: a cluster such as
//! `"ASN=ASN1, CDN=CDN1"` is the set of sessions matching those values. With
//! seven dimensions there are `2^7 - 1 = 127` non-trivial projections of each
//! session (the empty projection is the "Root" cluster holding everything).
//!
//! For performance the whole `(mask, values)` pair is packed into a single
//! `u64` ([`ClusterKey`]): the analysis pipeline performs hundreds of
//! millions of hash-map updates keyed by cluster, so keys must be `Copy`,
//! cheap to hash, and allocation-free.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The seven client/session attributes from the paper, in its order of
/// presentation (§2: ASN, CDN, Site, VoD-or-Live, player, browser,
/// connection type).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(u8)]
pub enum AttrKey {
    /// Autonomous system number of the client IP.
    Asn = 0,
    /// Content delivery network that served (most of) the session.
    Cdn = 1,
    /// Content provider ("site") the content was requested from.
    Site = 2,
    /// Whether the content was a live event or video-on-demand.
    VodOrLive = 3,
    /// Player technology (Flash, Silverlight, HTML5, ...).
    PlayerType = 4,
    /// Client browser.
    Browser = 5,
    /// Access-network connection type (mobile wireless, DSL, fiber, ...).
    ConnType = 6,
}

impl AttrKey {
    /// All attributes in canonical (paper) order.
    pub const ALL: [AttrKey; 7] = [
        AttrKey::Asn,
        AttrKey::Cdn,
        AttrKey::Site,
        AttrKey::VodOrLive,
        AttrKey::PlayerType,
        AttrKey::Browser,
        AttrKey::ConnType,
    ];

    /// Number of attribute dimensions.
    pub const COUNT: usize = 7;

    /// The dimension index (0..7) of this attribute.
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// The attribute for a dimension index; panics if `idx >= 7`.
    #[inline]
    pub const fn from_index(idx: usize) -> AttrKey {
        Self::ALL[idx]
    }

    /// Short human-readable name matching the paper's figures.
    pub const fn name(self) -> &'static str {
        match self {
            AttrKey::Asn => "ASN",
            AttrKey::Cdn => "CDN",
            AttrKey::Site => "Site",
            AttrKey::VodOrLive => "VodOrLive",
            AttrKey::PlayerType => "PlayerType",
            AttrKey::Browser => "Browser",
            AttrKey::ConnType => "ConnectionType",
        }
    }
}

impl fmt::Display for AttrKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Bit width of each attribute's value field inside a packed key, by
/// dimension index. Chosen to comfortably fit realistic cardinalities
/// (the paper saw ~15 K ASNs, 19 CDNs, 379 sites) with headroom:
/// ASN 16 bits, CDN 6, Site 10, VodOrLive 1, Player 3, Browser 3, Conn 3.
pub const VALUE_BITS: [u32; 7] = [16, 6, 10, 1, 3, 3, 3];

/// Bit offset of each attribute's value field inside a packed key.
pub const VALUE_SHIFT: [u32; 7] = {
    let mut shifts = [0u32; 7];
    let mut acc = 0u32;
    let mut i = 0;
    while i < 7 {
        shifts[i] = acc;
        acc += VALUE_BITS[i];
        i += 1;
    }
    shifts
};

/// Total bits used by value fields (the mask occupies the 7 bits above).
pub const TOTAL_VALUE_BITS: u32 = {
    let mut acc = 0u32;
    let mut i = 0;
    while i < 7 {
        acc += VALUE_BITS[i];
        i += 1;
    }
    acc
};

/// Maximum representable value id for each dimension.
#[inline]
pub const fn max_value(dim: usize) -> u32 {
    ((1u64 << VALUE_BITS[dim]) - 1) as u32
}

/// For every 7-bit attribute mask, the `u64` bit pattern selecting the value
/// fields of the constrained dimensions. Hot-path projection of a packed key
/// onto a submask is then a single AND plus OR (see
/// [`ClusterKey::project_onto`]).
pub const PROJ_BITS: [u64; 128] = {
    let mut table = [0u64; 128];
    let mut m = 0usize;
    while m < 128 {
        let mut bits = 0u64;
        let mut dim = 0;
        while dim < 7 {
            if m & (1 << dim) != 0 {
                bits |= ((1u64 << VALUE_BITS[dim]) - 1) << VALUE_SHIFT[dim];
            }
            dim += 1;
        }
        table[m] = bits;
        m += 1;
    }
    table
};

/// A subset of the seven attribute dimensions, as a 7-bit set.
///
/// `AttrMask` identifies *which* attributes a cluster constrains; the root
/// cluster has the empty mask and a full session "leaf" has all seven bits
/// set. Masks form the subset lattice over which problem clusters and
/// critical clusters are defined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AttrMask(pub u8);

impl AttrMask {
    /// The empty mask: the root cluster (all sessions).
    pub const EMPTY: AttrMask = AttrMask(0);
    /// The full mask: all seven attributes fixed (a session "leaf").
    pub const FULL: AttrMask = AttrMask(0x7f);

    /// Mask containing exactly one attribute.
    #[inline]
    pub const fn single(key: AttrKey) -> AttrMask {
        AttrMask(1 << key.index())
    }

    /// Build a mask from a list of attributes.
    pub fn of(keys: &[AttrKey]) -> AttrMask {
        let mut m = 0u8;
        for k in keys {
            m |= 1 << k.index();
        }
        AttrMask(m)
    }

    /// Does this mask constrain attribute `key`?
    #[inline]
    pub const fn contains(self, key: AttrKey) -> bool {
        self.0 & (1 << key.index()) != 0
    }

    /// Does this mask constrain dimension index `dim`?
    #[inline]
    pub const fn contains_dim(self, dim: usize) -> bool {
        self.0 & (1 << dim) != 0
    }

    /// Mask with attribute `key` added.
    #[inline]
    pub const fn with(self, key: AttrKey) -> AttrMask {
        AttrMask(self.0 | (1 << key.index()))
    }

    /// Mask with attribute `key` removed.
    #[inline]
    pub const fn without(self, key: AttrKey) -> AttrMask {
        AttrMask(self.0 & !(1 << key.index()))
    }

    /// Number of constrained attributes.
    #[inline]
    pub const fn len(self) -> u32 {
        self.0.count_ones()
    }

    /// True for the empty (root) mask.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Is `self` a (non-strict) subset of `other`?
    #[inline]
    pub const fn is_subset_of(self, other: AttrMask) -> bool {
        self.0 & !other.0 == 0
    }

    /// Is `self` a strict subset of `other`?
    #[inline]
    pub const fn is_strict_subset_of(self, other: AttrMask) -> bool {
        self.0 != other.0 && self.is_subset_of(other)
    }

    /// Iterate over the constrained attributes, in dimension order.
    pub fn iter(self) -> impl Iterator<Item = AttrKey> {
        AttrKey::ALL.into_iter().filter(move |k| self.contains(*k))
    }

    /// Iterate the *parents* in the cluster DAG: all masks obtained by
    /// removing exactly one attribute. The root has no parents.
    pub fn parents(self) -> impl Iterator<Item = AttrMask> {
        AttrKey::ALL.into_iter().filter_map(move |k| {
            if self.contains(k) {
                Some(self.without(k))
            } else {
                None
            }
        })
    }

    /// All `2^7` masks, including the empty mask, in increasing bit order.
    pub fn all() -> impl Iterator<Item = AttrMask> {
        (0u8..=0x7f).map(AttrMask)
    }

    /// All non-empty masks (the 127 session projections).
    pub fn all_nonempty() -> impl Iterator<Item = AttrMask> {
        (1u8..=0x7f).map(AttrMask)
    }

    /// All non-empty, non-strict submasks of `self` (including `self`).
    ///
    /// Uses the standard subset-enumeration trick, visiting each of the
    /// `2^len - 1` non-empty subsets exactly once.
    pub fn nonempty_submasks(self) -> impl Iterator<Item = AttrMask> {
        let full = self.0;
        let mut sub = full;
        let mut done = full == 0;
        std::iter::from_fn(move || {
            if done {
                return None;
            }
            let cur = sub;
            if sub == 0 {
                return None;
            }
            sub = (sub - 1) & full;
            if sub == 0 {
                done = true;
            }
            Some(AttrMask(cur))
        })
    }
}

impl fmt::Display for AttrMask {
    /// Renders like the paper's Figure 10 labels:
    /// `[*, CDN, *, *, *, *, *]` for the CDN-only mask.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, key) in AttrKey::ALL.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            if self.contains(*key) {
                write!(f, "{}", key.name())?;
            } else {
                write!(f, "*")?;
            }
        }
        write!(f, "]")
    }
}

/// The fully-specified attribute vector of one session (a lattice "leaf").
///
/// Values are dictionary ids (see [`crate::dataset::AttrDict`]); the mapping
/// from ids to names lives in the dataset, keeping sessions compact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SessionAttrs {
    /// Value id for every dimension, indexed by [`AttrKey::index`].
    pub values: [u32; 7],
}

impl SessionAttrs {
    /// Construct from per-dimension value ids; panics (debug) if any value
    /// exceeds its dimension's packed width.
    pub fn new(values: [u32; 7]) -> SessionAttrs {
        for (dim, v) in values.iter().enumerate() {
            // A hard assert (not debug): an over-width id would silently
            // bleed into neighbouring packed fields and corrupt every
            // cluster key derived from this session. Seven compares are
            // noise next to the simulation work per session.
            assert!(
                *v <= max_value(dim),
                "attribute value {v} exceeds width of dimension {dim}"
            );
        }
        SessionAttrs { values }
    }

    /// Value id of one attribute.
    #[inline]
    pub fn get(&self, key: AttrKey) -> u32 {
        self.values[key.index()]
    }

    /// The leaf cluster key (all seven attributes fixed).
    #[inline]
    pub fn leaf_key(&self) -> ClusterKey {
        self.project(AttrMask::FULL)
    }

    /// Project this session onto an attribute subset, producing the key of
    /// the cluster (with that mask) the session belongs to.
    #[inline]
    pub fn project(&self, mask: AttrMask) -> ClusterKey {
        let mut packed: u64 = (mask.0 as u64) << TOTAL_VALUE_BITS;
        // Unconstrained dimensions are canonically zero so that equal
        // (mask, constrained-values) pairs pack identically.
        for (dim, value) in self.values.iter().enumerate() {
            if mask.contains_dim(dim) {
                packed |= (*value as u64) << VALUE_SHIFT[dim];
            }
        }
        ClusterKey(packed)
    }
}

/// A cluster identifier: an attribute subset plus the value of each
/// constrained attribute, packed into one `u64`.
///
/// ```
/// use vqlens_model::attr::{AttrKey, AttrMask, ClusterKey, SessionAttrs};
///
/// // A session's full attribute vector …
/// let session = SessionAttrs::new([7922, 3, 120, 0, 2, 1, 4]);
/// // … projects onto any attribute subset, giving the cluster it belongs to.
/// let cluster = session.project(AttrMask::of(&[AttrKey::Asn, AttrKey::Cdn]));
/// assert_eq!(cluster.value(AttrKey::Asn), Some(7922));
/// assert_eq!(cluster.value(AttrKey::Site), None);
/// assert!(cluster.generalizes(session.leaf_key()));
/// assert_eq!(cluster.to_string(), "[ASN=7922, CDN=3, *, *, *, *, *]");
/// ```
///
/// Layout (low to high): value fields per [`VALUE_BITS`]/[`VALUE_SHIFT`],
/// then the 7-bit mask at [`TOTAL_VALUE_BITS`]. Unconstrained dimensions are
/// zero, making the packing canonical: two keys are equal iff they denote
/// the same cluster.
///
/// # Ordering
///
/// `Ord` compares the packed `u64` directly. Because the mask occupies the
/// *top* bits, this order is **mask-major**: all keys of one mask sort
/// contiguously, masks appear in increasing [`AttrMask`] bit order (so
/// [`AttrMask::FULL`] — the leaves — sorts last), and within a mask keys
/// sort by their packed constrained values. Flat cube storage
/// (`vqlens_cluster::cube::CubeTable`) relies on this guarantee to carve a
/// sorted table into per-mask slices; it is part of the type's contract,
/// not an implementation accident.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ClusterKey(pub u64);

impl ClusterKey {
    /// The root cluster (no attributes constrained).
    pub const ROOT: ClusterKey = ClusterKey(0);

    /// Build a key from a mask and a full value vector (unmasked dims are
    /// ignored/zeroed).
    pub fn new(mask: AttrMask, values: [u32; 7]) -> ClusterKey {
        SessionAttrs::new(values).project(mask)
    }

    /// Build a single-attribute cluster key.
    pub fn of_single(key: AttrKey, value: u32) -> ClusterKey {
        let mut values = [0u32; 7];
        values[key.index()] = value;
        ClusterKey::new(AttrMask::single(key), values)
    }

    /// The attribute subset this cluster constrains.
    #[inline]
    pub fn mask(self) -> AttrMask {
        AttrMask(((self.0 >> TOTAL_VALUE_BITS) & 0x7f) as u8)
    }

    /// The value id of dimension `dim` (zero when unconstrained).
    #[inline]
    pub fn value_dim(self, dim: usize) -> u32 {
        ((self.0 >> VALUE_SHIFT[dim]) & ((1u64 << VALUE_BITS[dim]) - 1)) as u32
    }

    /// The value id of attribute `key`, or `None` when unconstrained.
    #[inline]
    pub fn value(self, key: AttrKey) -> Option<u32> {
        if self.mask().contains(key) {
            Some(self.value_dim(key.index()))
        } else {
            None
        }
    }

    /// Number of constrained attributes.
    #[inline]
    pub fn depth(self) -> u32 {
        self.mask().len()
    }

    /// The parent obtained by unconstraining attribute `key`; `None` if this
    /// cluster does not constrain `key`.
    pub fn parent_without(self, key: AttrKey) -> Option<ClusterKey> {
        if !self.mask().contains(key) {
            return None;
        }
        let dim = key.index();
        let value_mask = ((1u64 << VALUE_BITS[dim]) - 1) << VALUE_SHIFT[dim];
        let mask_bit = 1u64 << (TOTAL_VALUE_BITS + dim as u32);
        Some(ClusterKey(self.0 & !value_mask & !mask_bit))
    }

    /// Project this key onto a submask of its own mask, yielding the
    /// ancestor cluster constraining only the attributes in `mask`.
    ///
    /// This is the hot-path generalization primitive: one AND plus one OR.
    ///
    /// # Panics
    /// Debug-panics when `mask` is not a subset of this key's mask.
    #[inline]
    pub fn project_onto(self, mask: AttrMask) -> ClusterKey {
        debug_assert!(
            mask.is_subset_of(self.mask()),
            "projection mask {mask:?} not a subset of {:?}",
            self.mask()
        );
        ClusterKey((self.0 & PROJ_BITS[mask.0 as usize]) | ((mask.0 as u64) << TOTAL_VALUE_BITS))
    }

    /// All parents in the cluster DAG (one constrained attribute removed).
    pub fn parents(self) -> impl Iterator<Item = ClusterKey> {
        AttrKey::ALL
            .into_iter()
            .filter_map(move |k| self.parent_without(k))
    }

    /// Is `self` an ancestor-or-equal of `other` (i.e., does every session
    /// in `other` also belong to `self`)?
    pub fn generalizes(self, other: ClusterKey) -> bool {
        if !self.mask().is_subset_of(other.mask()) {
            return false;
        }
        self.mask()
            .iter()
            .all(|k| self.value_dim(k.index()) == other.value_dim(k.index()))
    }

    /// The projection of a full leaf onto this cluster's mask equals this
    /// key exactly when the leaf's sessions belong to this cluster.
    pub fn matches_leaf(self, leaf: ClusterKey) -> bool {
        debug_assert_eq!(leaf.mask(), AttrMask::FULL);
        self.generalizes(leaf)
    }

    /// Render with dictionary names resolved via `resolve(key, id) -> name`.
    pub fn display_with<'a, F>(self, resolve: F) -> ClusterKeyDisplay<F>
    where
        F: Fn(AttrKey, u32) -> &'a str,
    {
        ClusterKeyDisplay { key: self, resolve }
    }
}

impl fmt::Display for ClusterKey {
    /// Renders like `[ASN=17, CDN=3, *, *, *, *, *]` (raw value ids).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, key) in AttrKey::ALL.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match self.value(*key) {
                Some(v) => write!(f, "{}={}", key.name(), v)?,
                None => write!(f, "*")?,
            }
        }
        write!(f, "]")
    }
}

/// Helper returned by [`ClusterKey::display_with`], rendering value names.
pub struct ClusterKeyDisplay<F> {
    key: ClusterKey,
    resolve: F,
}

impl<'a, F> fmt::Display for ClusterKeyDisplay<F>
where
    F: Fn(AttrKey, u32) -> &'a str,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, key) in AttrKey::ALL.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match self.key.value(*key) {
                Some(v) => write!(f, "{}={}", key.name(), (self.resolve)(*key, v))?,
                None => write!(f, "*")?,
            }
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_fit_in_u64() {
        assert!(TOTAL_VALUE_BITS + 7 <= 64);
        assert_eq!(VALUE_SHIFT[0], 0);
        assert_eq!(VALUE_SHIFT[1], 16);
        assert_eq!(TOTAL_VALUE_BITS, 42);
    }

    #[test]
    fn mask_basics() {
        let m = AttrMask::of(&[AttrKey::Asn, AttrKey::Cdn]);
        assert!(m.contains(AttrKey::Asn));
        assert!(m.contains(AttrKey::Cdn));
        assert!(!m.contains(AttrKey::Site));
        assert_eq!(m.len(), 2);
        assert!(AttrMask::single(AttrKey::Asn).is_strict_subset_of(m));
        assert!(!m.is_strict_subset_of(m));
        assert!(m.is_subset_of(AttrMask::FULL));
    }

    #[test]
    fn mask_parents() {
        let m = AttrMask::of(&[AttrKey::Asn, AttrKey::Cdn, AttrKey::Site]);
        let parents: Vec<_> = m.parents().collect();
        assert_eq!(parents.len(), 3);
        for p in parents {
            assert_eq!(p.len(), 2);
            assert!(p.is_strict_subset_of(m));
        }
        assert_eq!(AttrMask::EMPTY.parents().count(), 0);
    }

    #[test]
    fn mask_enumeration_counts() {
        assert_eq!(AttrMask::all().count(), 128);
        assert_eq!(AttrMask::all_nonempty().count(), 127);
        let m = AttrMask::of(&[AttrKey::Asn, AttrKey::Cdn, AttrKey::Site]);
        let subs: Vec<_> = m.nonempty_submasks().collect();
        assert_eq!(subs.len(), 7);
        for s in &subs {
            assert!(s.is_subset_of(m));
            assert!(!s.is_empty());
        }
        assert_eq!(AttrMask::FULL.nonempty_submasks().count(), 127);
        assert_eq!(AttrMask::EMPTY.nonempty_submasks().count(), 0);
    }

    #[test]
    fn projection_is_canonical() {
        let a = SessionAttrs::new([100, 5, 42, 1, 2, 3, 1]);
        let b = SessionAttrs::new([100, 5, 7, 0, 0, 1, 4]);
        let m = AttrMask::of(&[AttrKey::Asn, AttrKey::Cdn]);
        // Same ASN and CDN => same cluster regardless of other attributes.
        assert_eq!(a.project(m), b.project(m));
        // Different mask => different cluster even with equal values.
        assert_ne!(a.project(m), a.project(AttrMask::single(AttrKey::Asn)));
    }

    #[test]
    fn key_roundtrip() {
        let attrs = SessionAttrs::new([65535, 63, 1023, 1, 7, 7, 7]);
        let key = attrs.leaf_key();
        assert_eq!(key.mask(), AttrMask::FULL);
        for k in AttrKey::ALL {
            assert_eq!(key.value(k), Some(attrs.get(k)));
        }
        let m = AttrMask::of(&[AttrKey::Site, AttrKey::ConnType]);
        let key = attrs.project(m);
        assert_eq!(key.mask(), m);
        assert_eq!(key.value(AttrKey::Site), Some(1023));
        assert_eq!(key.value(AttrKey::ConnType), Some(7));
        assert_eq!(key.value(AttrKey::Asn), None);
    }

    #[test]
    fn parent_without_unconstrains() {
        let attrs = SessionAttrs::new([9, 2, 30, 0, 1, 2, 3]);
        let m = AttrMask::of(&[AttrKey::Asn, AttrKey::Cdn]);
        let key = attrs.project(m);
        let p = key.parent_without(AttrKey::Cdn).unwrap();
        assert_eq!(p, attrs.project(AttrMask::single(AttrKey::Asn)));
        assert!(key.parent_without(AttrKey::Site).is_none());
        assert_eq!(key.parents().count(), 2);
        assert_eq!(ClusterKey::ROOT.parents().count(), 0);
    }

    #[test]
    fn generalizes_semantics() {
        let attrs = SessionAttrs::new([9, 2, 30, 0, 1, 2, 3]);
        let leaf = attrs.leaf_key();
        let asn = attrs.project(AttrMask::single(AttrKey::Asn));
        let asn_cdn = attrs.project(AttrMask::of(&[AttrKey::Asn, AttrKey::Cdn]));
        assert!(asn.generalizes(asn_cdn));
        assert!(asn.generalizes(leaf));
        assert!(asn_cdn.generalizes(leaf));
        assert!(!asn_cdn.generalizes(asn));
        assert!(ClusterKey::ROOT.generalizes(leaf));
        // Same mask, different value: no generalization.
        let other = SessionAttrs::new([10, 2, 30, 0, 1, 2, 3]);
        assert!(!asn.generalizes(other.leaf_key()));
        assert!(asn.generalizes(asn));
    }

    #[test]
    fn project_onto_matches_session_projection() {
        let attrs = SessionAttrs::new([900, 13, 222, 1, 4, 5, 6]);
        let leaf = attrs.leaf_key();
        for mask in AttrMask::all() {
            assert_eq!(leaf.project_onto(mask), attrs.project(mask));
        }
        // Projecting a partial key onto a submask of its mask.
        let ac = attrs.project(AttrMask::of(&[AttrKey::Asn, AttrKey::Cdn]));
        assert_eq!(
            ac.project_onto(AttrMask::single(AttrKey::Cdn)),
            attrs.project(AttrMask::single(AttrKey::Cdn))
        );
        assert_eq!(ac.project_onto(AttrMask::EMPTY), ClusterKey::ROOT);
    }

    #[test]
    fn key_order_is_mask_major() {
        // The documented contract: sorting keys by the packed u64 groups
        // them by mask, masks ascend in AttrMask bit order (FULL last), and
        // within a mask keys ascend by their packed values.
        let sessions = [
            SessionAttrs::new([9, 2, 30, 0, 1, 2, 3]),
            SessionAttrs::new([10, 2, 30, 1, 0, 0, 0]),
            SessionAttrs::new([9, 5, 7, 0, 2, 1, 1]),
        ];
        let mut keys: Vec<ClusterKey> = sessions
            .iter()
            .flat_map(|s| AttrMask::all_nonempty().map(|m| s.project(m)))
            .collect();
        keys.sort();
        keys.dedup();
        // Mask sequence along the sorted keys is non-decreasing …
        assert!(keys.windows(2).all(|w| w[0].mask().0 <= w[1].mask().0));
        // … so each mask's keys form one contiguous, internally sorted run,
        // and the leaves (FULL) are the final run.
        assert_eq!(keys.last().unwrap().mask(), AttrMask::FULL);
        let first_full = keys
            .iter()
            .position(|k| k.mask() == AttrMask::FULL)
            .unwrap();
        assert!(keys[first_full..]
            .iter()
            .all(|k| k.mask() == AttrMask::FULL));
        assert_eq!(keys[first_full..].len(), sessions.len());
    }

    #[test]
    fn display_formats_like_paper() {
        let key = ClusterKey::of_single(AttrKey::Cdn, 3);
        assert_eq!(key.to_string(), "[*, CDN=3, *, *, *, *, *]");
        let m = AttrMask::of(&[AttrKey::Site, AttrKey::ConnType]);
        assert_eq!(m.to_string(), "[*, *, Site, *, *, *, ConnectionType]");
        let named = key.display_with(|_, _| "Akamai-like");
        assert_eq!(named.to_string(), "[*, CDN=Akamai-like, *, *, *, *, *]");
    }
}
