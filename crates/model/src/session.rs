//! A single video viewing session: attributes plus measured quality.

use crate::attr::SessionAttrs;
use crate::epoch::EpochId;
use crate::metric::QualityMeasurement;
use serde::{Deserialize, Serialize};

/// One viewing session: a user watching one piece of content on one
/// affiliate site for some duration (the basic unit of the paper's dataset).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SessionRecord {
    /// Epoch in which the session started.
    pub epoch: EpochId,
    /// The session's seven attribute values (dictionary ids).
    pub attrs: SessionAttrs,
    /// Client-side quality measurement.
    pub quality: QualityMeasurement,
}

impl SessionRecord {
    /// Construct a session record.
    pub fn new(epoch: EpochId, attrs: SessionAttrs, quality: QualityMeasurement) -> SessionRecord {
        SessionRecord {
            epoch,
            attrs,
            quality,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttrMask;

    #[test]
    fn session_projects_to_leaf() {
        let s = SessionRecord::new(
            EpochId(3),
            SessionAttrs::new([1, 2, 3, 0, 1, 2, 3]),
            QualityMeasurement::joined(900, 300.0, 0.0, 2500.0),
        );
        assert_eq!(s.attrs.leaf_key().mask(), AttrMask::FULL);
        assert_eq!(s.epoch.0, 3);
    }
}
