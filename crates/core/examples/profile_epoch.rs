//! Developer utility: per-phase wall-clock profile of one epoch's analysis.
//!
//! ```text
//! cargo run --release -p vqlens-core --example profile_epoch
//! ```

use std::time::Instant;
use vqlens_core::prelude::*;

fn main() {
    let mut scenario = Scenario::paper_default();
    scenario.arrivals.sessions_per_epoch = 12_000.0;
    scenario.epochs = 3;
    let out = vqlens_core::pipeline::generate_parallel(&scenario, 0);
    let config = AnalyzerConfig::for_scenario(&scenario);
    let data = out.dataset.epoch(EpochId(1));
    println!("sessions in epoch: {}", data.len());

    // The shared context is the production path: cube build + prune +
    // per-metric problem sets, computed once.
    let t = Instant::now();
    let ctx = AnalysisContext::compute(EpochId(1), data, &config.thresholds, &config.significance);
    println!(
        "context:     {:>12?}  ({} clusters after prune)",
        t.elapsed(),
        ctx.cube.num_clusters()
    );
    for threads in [2, 4] {
        let t = Instant::now();
        let _ = AnalysisContext::compute_with_threads(
            EpochId(1),
            data,
            &config.thresholds,
            &config.significance,
            threads,
        );
        println!("context x{threads}:  {:>12?}", t.elapsed());
    }
    for m in Metric::ALL {
        let ps = ctx.problems(m);
        let t = Instant::now();
        let cs = ctx.critical(m, &config.critical);
        println!(
            "{m:<12} problem ({:>5} PC)   critical {:>10?} ({:>3} CC)",
            ps.len(),
            t.elapsed(),
            cs.len()
        );
    }
    let t = Instant::now();
    let _ = EpochAnalysis::compute(
        EpochId(1),
        data,
        &config.thresholds,
        &config.significance,
        &config.critical,
    );
    println!("full epoch:  {:>12?}", t.elapsed());
}
