//! Developer utility: per-phase wall-clock profile of one epoch's analysis.
//!
//! ```text
//! cargo run --release -p vqlens-core --example profile_epoch
//! ```

use std::time::Instant;
use vqlens_core::prelude::*;

fn main() {
    let mut scenario = Scenario::paper_default();
    scenario.arrivals.sessions_per_epoch = 12_000.0;
    scenario.epochs = 3;
    let out = vqlens_core::pipeline::generate_parallel(&scenario, 0);
    let config = AnalyzerConfig::for_scenario(&scenario);
    let data = out.dataset.epoch(EpochId(1));
    println!("sessions in epoch: {}", data.len());

    let t = Instant::now();
    let mut cube = EpochCube::build(EpochId(1), data, &config.thresholds);
    println!("cube build:  {:>12?}  ({} clusters)", t.elapsed(), cube.num_clusters());
    let t = Instant::now();
    cube.prune(config.significance.min_sessions);
    println!("prune:       {:>12?}  ({} clusters kept)", t.elapsed(), cube.num_clusters());
    for m in Metric::ALL {
        let t = Instant::now();
        let ps = ProblemSet::identify(&cube, m, &config.significance);
        let t1 = t.elapsed();
        let t = Instant::now();
        let cs = CriticalSet::identify(&cube, &ps, &config.significance, &config.critical);
        println!(
            "{m:<12} problem {t1:>10?} ({:>5} PC)   critical {:>10?} ({:>3} CC)",
            ps.len(),
            t.elapsed(),
            cs.len()
        );
    }
    let t = Instant::now();
    let _ = EpochAnalysis::compute(
        EpochId(1),
        data,
        &config.thresholds,
        &config.significance,
        &config.critical,
    );
    println!("full epoch:  {:>12?}", t.elapsed());
}
