//! The parallel trace pipeline: generation and per-epoch analysis.
//!
//! Epochs are independent in both stages — generation derives a per-epoch
//! RNG stream from the master seed, and the cluster analysis of one epoch
//! never looks at another — so both stages fan out across worker threads
//! with a simple atomic work queue. Results are written into pre-sized
//! slots, keeping both stages deterministic regardless of thread count.

use crate::config::AnalyzerConfig;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU32, Ordering};
use vqlens_cluster::analyze::EpochAnalysis;
use vqlens_model::dataset::Dataset;
use vqlens_model::epoch::EpochId;
use vqlens_model::metric::Metric;
use vqlens_synth::arrivals::ArrivalSampler;
use vqlens_synth::scenario::{generate_epoch, prepare, Scenario, SynthOutput};

/// The per-epoch analysis of a whole trace.
#[derive(Debug, Clone)]
pub struct TraceAnalysis {
    /// The configuration used.
    pub config: AnalyzerConfig,
    epochs: Vec<EpochAnalysis>,
}

impl TraceAnalysis {
    /// Per-epoch analyses, ordered by epoch.
    pub fn epochs(&self) -> &[EpochAnalysis] {
        &self.epochs
    }

    /// Number of analyzed epochs.
    pub fn len(&self) -> usize {
        self.epochs.len()
    }

    /// True for an empty trace.
    pub fn is_empty(&self) -> bool {
        self.epochs.is_empty()
    }

    /// Total problem sessions over the trace for one metric.
    pub fn total_problems(&self, metric: Metric) -> u64 {
        self.epochs
            .iter()
            .map(|a| a.metric(metric).critical.total_problems)
            .sum()
    }

    /// Total sessions over the trace.
    pub fn total_sessions(&self) -> u64 {
        self.epochs.iter().map(|a| a.total_sessions).sum()
    }
}

/// Run work items `0..n` across `threads` workers, collecting results into
/// index order.
fn parallel_indexed<T, F>(n: u32, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u32) -> T + Sync,
{
    let threads = threads.clamp(1, n.max(1) as usize);
    let next = AtomicU32::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let result = f(i);
                *slots[i as usize].lock() = Some(result);
            });
        }
    })
    .expect("worker thread panicked");
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every slot filled"))
        .collect()
}

/// Generate a scenario's trace with per-epoch parallelism. Produces exactly
/// the same dataset as [`vqlens_synth::scenario::generate`], regardless of
/// thread count.
pub fn generate_parallel(scenario: &Scenario, threads: usize) -> SynthOutput {
    let (world, ground_truth, mut dataset) = prepare(scenario);
    let sampler = ArrivalSampler::new(&world);
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    };
    let epochs = parallel_indexed(scenario.epochs, threads, |e| {
        generate_epoch(
            &world,
            &sampler,
            &ground_truth,
            &scenario.arrivals,
            EpochId(e),
            scenario.seed,
        )
    });
    for (e, data) in epochs.into_iter().enumerate() {
        dataset.set_epoch(EpochId(e as u32), data);
    }
    SynthOutput {
        dataset,
        world,
        ground_truth,
    }
}

/// Analyze every epoch of a dataset (cube → problem clusters → critical
/// clusters, all four metrics) in parallel.
pub fn analyze_dataset(dataset: &Dataset, config: &AnalyzerConfig) -> TraceAnalysis {
    let epochs = parallel_indexed(
        dataset.num_epochs(),
        config.effective_threads(),
        |e| {
            let epoch = EpochId(e);
            EpochAnalysis::compute(
                epoch,
                dataset.epoch(epoch),
                &config.thresholds,
                &config.significance,
                &config.critical,
            )
        },
    );
    TraceAnalysis {
        config: *config,
        epochs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqlens_model::metric::Metric;

    #[test]
    fn parallel_indexed_preserves_order() {
        let out = parallel_indexed(100, 7, |i| i * 2);
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u32 * 2);
        }
        // Degenerate cases.
        assert!(parallel_indexed(0, 4, |i| i).is_empty());
        assert_eq!(parallel_indexed(1, 16, |i| i), vec![0]);
    }

    #[test]
    fn parallel_generation_matches_serial() {
        let scenario = Scenario::smoke();
        let par = generate_parallel(&scenario, 4);
        let ser = vqlens_synth::scenario::generate(&scenario);
        assert_eq!(par.dataset.num_sessions(), ser.dataset.num_sessions());
        for (e, data) in ser.dataset.iter_epochs() {
            assert_eq!(par.dataset.epoch(e).attrs, data.attrs);
        }
    }

    #[test]
    fn analysis_is_thread_count_invariant() {
        let scenario = Scenario::smoke();
        let out = generate_parallel(&scenario, 0);
        let mut config = AnalyzerConfig::for_scenario(&scenario);
        config.threads = 1;
        let a = analyze_dataset(&out.dataset, &config);
        config.threads = 8;
        let b = analyze_dataset(&out.dataset, &config);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.epochs().iter().zip(b.epochs()) {
            assert_eq!(x.epoch, y.epoch);
            assert_eq!(x.total_sessions, y.total_sessions);
            for m in Metric::ALL {
                assert_eq!(x.metric(m).problems.len(), y.metric(m).problems.len());
                assert_eq!(x.metric(m).critical.len(), y.metric(m).critical.len());
            }
        }
        assert_eq!(a.total_sessions(), out.dataset.num_sessions() as u64);
        assert!(a.total_problems(Metric::Bitrate) > 0);
    }
}
