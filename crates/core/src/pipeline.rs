//! The parallel trace pipeline: generation and per-epoch analysis.
//!
//! Epochs are independent in both stages — generation derives a per-epoch
//! RNG stream from the master seed, and the cluster analysis of one epoch
//! never looks at another — so both stages fan out across worker threads
//! over a chunked work queue: workers claim contiguous index ranges and
//! write results directly into disjoint sub-slices of one pre-sized slot
//! vector, keeping both stages deterministic regardless of thread count.
//! When there are more threads than epochs, the analysis stage hands the
//! surplus to intra-epoch cube construction
//! ([`EpochAnalysis::compute_with_threads`]), which is itself bit-for-bit
//! thread-count invariant — so a single huge epoch (the online-monitor
//! latency case) still uses the whole machine.
//!
//! Workers are **panic-isolated**: each work item runs under
//! [`std::panic::catch_unwind`], so one poisoned epoch cannot take down
//! the whole trace. Generation treats a worker panic as fatal (it means a
//! bug, not bad data) but reports *which* epoch failed; analysis degrades
//! instead — [`TraceAnalysis`] records a per-epoch [`EpochStatus`]
//! (`Ok` / `Degraded` / `Failed`) and downstream consumers
//! (prevalence, persistence, what-if, the monitor) operate on the
//! successfully analyzed epochs while the failures stay visible.

use crate::config::AnalyzerConfig;
use parking_lot::Mutex;
use std::any::Any;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use vqlens_cluster::analyze::EpochAnalysis;
use vqlens_model::csv::IngestReport;
use vqlens_model::dataset::Dataset;
use vqlens_model::epoch::EpochId;
use vqlens_model::metric::Metric;
use vqlens_obs as obs;
use vqlens_synth::arrivals::ArrivalSampler;
use vqlens_synth::scenario::{generate_epoch, prepare, Scenario, SynthOutput};

// The per-epoch status type is shared with the checkpoint format and the
// resume oracles, so it lives in `vqlens-resilience` and is re-exported
// here where it has always been.
pub use vqlens_resilience::{DegradeCause, EpochStatus};

/// A worker panic captured by the pipeline, naming the failing work item
/// (the epoch index for both pipeline stages).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerPanic {
    /// Index of the work item (epoch) whose worker panicked.
    pub index: u32,
    /// The captured panic message.
    pub message: String,
}

impl fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "worker for epoch {} panicked: {}",
            self.index, self.message
        )
    }
}

impl std::error::Error for WorkerPanic {}

/// Record a degradation against a status, bumping the degraded-epoch
/// counter exactly once per epoch (on the `Ok` → `Degraded` transition).
pub(crate) fn record_degrade(status: &mut EpochStatus, cause: DegradeCause) {
    if status.degrade(cause) {
        obs::global().incr(obs::Counter::EpochsDegraded);
    }
}

fn panic_message(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

/// The per-epoch analysis of a whole trace.
///
/// One poisoned epoch degrades the trace instead of killing it: failed
/// epochs are *excluded* from [`epochs`](TraceAnalysis::epochs) (so every
/// downstream consumer skips them explicitly by construction) and recorded
/// in [`statuses`](TraceAnalysis::statuses). Temporal analyses over a
/// trace with failures therefore see a gapped epoch sequence — the
/// `OnlineMonitor` documents how it times incidents across such gaps.
#[derive(Debug, Clone)]
pub struct TraceAnalysis {
    /// The configuration used.
    pub config: AnalyzerConfig,
    epochs: Vec<EpochAnalysis>,
    // Each status carries the *real* epoch id: an ingested trace need not
    // start at epoch 0, so slice position must never stand in for identity.
    statuses: Vec<(EpochId, EpochStatus)>,
}

impl TraceAnalysis {
    fn from_results(
        config: AnalyzerConfig,
        first_epoch: EpochId,
        results: Vec<Result<EpochAnalysis, WorkerPanic>>,
    ) -> TraceAnalysis {
        let rec = obs::global();
        let mut epochs = Vec::with_capacity(results.len());
        let mut statuses = Vec::with_capacity(results.len());
        for (i, result) in results.into_iter().enumerate() {
            let epoch = EpochId(first_epoch.0 + i as u32);
            match result {
                Ok(analysis) => {
                    debug_assert_eq!(analysis.epoch, epoch, "worker analyzed the wrong epoch");
                    rec.incr(obs::Counter::EpochsAnalyzed);
                    epochs.push(analysis);
                    statuses.push((epoch, EpochStatus::Ok));
                }
                Err(panic) => {
                    rec.incr(obs::Counter::EpochsFailed);
                    statuses.push((
                        epoch,
                        EpochStatus::Failed {
                            reason: panic.message,
                        },
                    ));
                }
            }
        }
        TraceAnalysis {
            config,
            epochs,
            statuses,
        }
    }

    /// Assemble a trace from pre-built parts — the seam the resilient
    /// driver uses to merge resumed checkpoints with freshly computed
    /// epochs. `epochs` holds the analyses of every non-`Failed` status,
    /// both already sorted by epoch id.
    pub(crate) fn from_parts(
        config: AnalyzerConfig,
        epochs: Vec<EpochAnalysis>,
        statuses: Vec<(EpochId, EpochStatus)>,
    ) -> TraceAnalysis {
        debug_assert!(statuses.windows(2).all(|w| w[0].0 .0 < w[1].0 .0));
        debug_assert_eq!(
            epochs.len(),
            statuses
                .iter()
                .filter(|(_, s)| !matches!(s, EpochStatus::Failed { .. }))
                .count(),
            "every non-failed status has exactly one analysis"
        );
        TraceAnalysis {
            config,
            epochs,
            statuses,
        }
    }

    /// Per-epoch analyses of the *successfully analyzed* epochs, ordered by
    /// epoch. With failed epochs this is shorter than the input trace; see
    /// [`statuses`](TraceAnalysis::statuses).
    pub fn epochs(&self) -> &[EpochAnalysis] {
        &self.epochs
    }

    /// Per-epoch outcome over the full input trace, tagged with the real
    /// epoch id (ingested traces need not start at epoch 0).
    pub fn statuses(&self) -> &[(EpochId, EpochStatus)] {
        &self.statuses
    }

    /// Number of successfully analyzed epochs.
    pub fn len(&self) -> usize {
        self.epochs.len()
    }

    /// True for an empty trace.
    pub fn is_empty(&self) -> bool {
        self.epochs.is_empty()
    }

    /// Number of epochs in the input trace (analyzed or not).
    pub fn num_input_epochs(&self) -> usize {
        self.statuses.len()
    }

    /// True when every epoch analyzed cleanly (no failures, no degraded
    /// ingest).
    pub fn is_complete(&self) -> bool {
        self.statuses.iter().all(|(_, s)| *s == EpochStatus::Ok)
    }

    /// The epochs whose analysis worker panicked, with the captured panic
    /// messages.
    pub fn failed_epochs(&self) -> impl Iterator<Item = (EpochId, &str)> + '_ {
        self.statuses.iter().filter_map(|(epoch, s)| match s {
            EpochStatus::Failed { reason } => Some((*epoch, reason.as_str())),
            _ => None,
        })
    }

    /// The epochs whose analysis carries degradations, with their causes
    /// (quarantined ingest lines, soft-deadline breaches, memory-budget
    /// sampling) in recording order.
    pub fn degraded_epochs(&self) -> impl Iterator<Item = (EpochId, &[DegradeCause])> + '_ {
        self.statuses.iter().filter_map(|(epoch, s)| match s {
            EpochStatus::Degraded { causes } => Some((*epoch, causes.as_slice())),
            _ => None,
        })
    }

    /// Downgrade epochs that lost quarantined lines during lenient ingest
    /// from `Ok` to `Degraded`, so partial epochs are visible instead of
    /// silently complete. Failed epochs stay failed; already-degraded
    /// epochs (sampled, timed out) accumulate the quarantine cause.
    /// Quarantine counts are matched by real epoch id, not slice position.
    pub fn apply_ingest_report(&mut self, report: &IngestReport) {
        for (&epoch, &count) in &report.per_epoch_bad {
            let entry = self
                .statuses
                .iter_mut()
                .find(|(id, _)| id.0 == epoch)
                .map(|(_, s)| s);
            if let Some(status) = entry {
                record_degrade(status, DegradeCause::QuarantinedLines { lines: count });
            }
        }
    }

    /// Downgrade epochs that were thinned *before* analysis — VQF inputs
    /// under `--max-mem` sample at the column level while decoding, so
    /// the dropped sessions never reach the analyzer (or the ladder's
    /// estimator). The causes carry the same `Sampled { kept, of }` shape
    /// the in-memory ladder records, matched by real epoch id.
    pub fn apply_pre_sampling(&mut self, causes: &[(EpochId, DegradeCause)]) {
        for (epoch, cause) in causes {
            let entry = self
                .statuses
                .iter_mut()
                .find(|(id, _)| id == epoch)
                .map(|(_, s)| s);
            if let Some(status) = entry {
                record_degrade(status, cause.clone());
            }
        }
    }

    /// Per-epoch outcomes converted to the observability crate's
    /// [`vqlens_obs::EpochOutcome`], ready for
    /// [`vqlens_obs::Recorder::record_epochs`] — this is how a run's
    /// degradations and failures reach the JSON [`vqlens_obs::RunReport`].
    pub fn epoch_outcomes(&self) -> Vec<obs::EpochOutcome> {
        self.statuses
            .iter()
            .map(|(id, status)| status.to_outcome(id.0))
            .collect()
    }

    /// Total problem sessions over the analyzed epochs for one metric.
    pub fn total_problems(&self, metric: Metric) -> u64 {
        self.epochs
            .iter()
            .map(|a| a.metric(metric).critical.total_problems)
            .sum()
    }

    /// Total sessions over the analyzed epochs.
    pub fn total_sessions(&self) -> u64 {
        self.epochs.iter().map(|a| a.total_sessions).sum()
    }
}

/// Run work items `0..n` across `threads` workers, collecting per-item
/// results into index order. A panicking item is caught and surfaced as
/// `Err(WorkerPanic)` in its slot; the other items are unaffected.
///
/// Workers claim *chunks* of contiguous indices from a shared queue and
/// write into the disjoint `&mut` sub-slices handed out with each chunk —
/// no per-slot lock, no per-item synchronization beyond the claim. Chunks
/// are sized to hand each thread a few claims, balancing queue contention
/// against tail latency from uneven items.
pub(crate) fn parallel_indexed_caught<T, F>(
    n: u32,
    threads: usize,
    f: F,
) -> Vec<Result<T, WorkerPanic>>
where
    T: Send,
    F: Fn(u32) -> T + Sync,
{
    let threads = threads.clamp(1, n.max(1) as usize);
    let mut slots: Vec<Option<Result<T, WorkerPanic>>> = Vec::new();
    slots.resize_with(n as usize, || None);
    {
        let chunk = (n as usize).div_ceil(threads * 4).max(1);
        let queue: Mutex<Vec<(u32, &mut [Option<Result<T, WorkerPanic>>])>> = Mutex::new({
            let mut q = Vec::with_capacity((n as usize).div_ceil(chunk));
            let mut start = 0u32;
            for run in slots.chunks_mut(chunk) {
                let len = run.len() as u32;
                q.push((start, run));
                start += len;
            }
            q.reverse(); // popped back-to-front => claims ascend by index
            q
        });
        // Every panic is caught per item, so the scope join cannot observe
        // an unwinding worker; if a worker nevertheless died, the slots of
        // its claimed chunk are still `None` and become errors below
        // instead of a bare `expect`.
        let _ = crossbeam::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|_| loop {
                    let Some((start, run)) = queue.lock().pop() else {
                        break;
                    };
                    for (offset, slot) in run.iter_mut().enumerate() {
                        let i = start + offset as u32;
                        let result = catch_unwind(AssertUnwindSafe(|| f(i))).map_err(|payload| {
                            WorkerPanic {
                                index: i,
                                message: panic_message(payload),
                            }
                        });
                        *slot = Some(result);
                    }
                });
            }
        });
        // `queue` still borrows `slots`; it drops here, before the collect.
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.unwrap_or_else(|| {
                Err(WorkerPanic {
                    index: i as u32,
                    message: "worker died before filling its result slot".to_owned(),
                })
            })
        })
        .collect()
}

/// Like [`parallel_indexed_caught`], but all-or-nothing: the first failing
/// item (by index) aborts the batch, naming the failing epoch.
fn parallel_indexed<T, F>(n: u32, threads: usize, f: F) -> Result<Vec<T>, WorkerPanic>
where
    T: Send,
    F: Fn(u32) -> T + Sync,
{
    parallel_indexed_caught(n, threads, f).into_iter().collect()
}

/// Generate a scenario's trace with per-epoch parallelism. Produces exactly
/// the same dataset as [`vqlens_synth::scenario::generate`], regardless of
/// thread count. A generation-worker panic (a bug, not bad data) is
/// propagated with the failing epoch named.
pub fn try_generate_parallel(
    scenario: &Scenario,
    threads: usize,
) -> Result<SynthOutput, WorkerPanic> {
    let _obs = obs::global().span(obs::Stage::Generate);
    let (world, ground_truth, mut dataset) = prepare(scenario);
    let sampler = ArrivalSampler::new(&world);
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    };
    let epochs = parallel_indexed(scenario.epochs, threads, |e| {
        generate_epoch(
            &world,
            &sampler,
            &ground_truth,
            &scenario.arrivals,
            EpochId(e),
            scenario.seed,
        )
    })?;
    for (e, data) in epochs.into_iter().enumerate() {
        dataset.set_epoch(EpochId(e as u32), data);
    }
    obs::global().add(obs::Counter::EpochsGenerated, u64::from(scenario.epochs));
    Ok(SynthOutput {
        dataset,
        world,
        ground_truth,
    })
}

/// [`try_generate_parallel`], aborting with an epoch-naming message on a
/// worker panic.
pub fn generate_parallel(scenario: &Scenario, threads: usize) -> SynthOutput {
    try_generate_parallel(scenario, threads)
        .unwrap_or_else(|p| panic!("trace generation failed: {p}"))
}

/// Analyze every epoch of a dataset (cube → problem clusters → critical
/// clusters, all four metrics) in parallel. A panicking epoch worker is
/// isolated: the epoch is recorded as [`EpochStatus::Failed`] and the rest
/// of the trace is analyzed normally.
pub fn analyze_dataset(dataset: &Dataset, config: &AnalyzerConfig) -> TraceAnalysis {
    let n = dataset.num_epochs();
    // Threads beyond the epoch count would idle at the outer fan-out; give
    // them to intra-epoch cube construction instead. Both levels are
    // bit-for-bit thread-count invariant, so the split never changes
    // results — only how a short-and-wide trace fills the machine.
    let intra = if n == 0 {
        1
    } else {
        (config.effective_threads() / n as usize).max(1)
    };
    analyze_epochs_with(EpochId(0), n, config, |epoch| {
        EpochAnalysis::compute_with_threads(
            epoch,
            dataset.epoch(epoch),
            &config.thresholds,
            &config.significance,
            &config.critical,
            intra,
        )
    })
}

/// Analysis driver over an arbitrary per-epoch closure; the seam that lets
/// tests inject panicking workers without manufacturing poisoned data.
/// `first_epoch` anchors the trace: worker `i` analyzes epoch
/// `first_epoch + i`, and statuses carry the resulting real epoch ids.
fn analyze_epochs_with<F>(
    first_epoch: EpochId,
    n: u32,
    config: &AnalyzerConfig,
    f: F,
) -> TraceAnalysis
where
    F: Fn(EpochId) -> EpochAnalysis + Sync,
{
    let _obs = obs::global().span(obs::Stage::TraceAnalysis);
    let results = parallel_indexed_caught(n, config.effective_threads(), |e| {
        let epoch = EpochId(first_epoch.0 + e);
        let _obs = obs::global().span_epoch(obs::Stage::EpochAnalysis, epoch.0);
        f(epoch)
    });
    TraceAnalysis::from_results(*config, first_epoch, results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqlens_cluster::critical::CriticalParams;
    use vqlens_cluster::problem::SignificanceParams;
    use vqlens_model::attr::SessionAttrs;
    use vqlens_model::dataset::EpochData;
    use vqlens_model::metric::{Metric, QualityMeasurement, Thresholds};

    #[test]
    fn parallel_indexed_preserves_order() {
        let out = parallel_indexed(100, 7, |i| i * 2).expect("no panics");
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u32 * 2);
        }
        // Degenerate cases.
        assert!(parallel_indexed(0, 4, |i| i).expect("no panics").is_empty());
        assert_eq!(parallel_indexed(1, 16, |i| i).expect("no panics"), vec![0]);
    }

    #[test]
    fn worker_panic_is_caught_and_names_the_epoch() {
        let results = parallel_indexed_caught(10, 4, |i| {
            if i == 7 {
                panic!("poisoned epoch {i}");
            }
            i * 3
        });
        assert_eq!(results.len(), 10);
        for (i, r) in results.iter().enumerate() {
            if i == 7 {
                let p = r.as_ref().unwrap_err();
                assert_eq!(p.index, 7);
                assert!(p.message.contains("poisoned epoch 7"));
                assert!(p.to_string().contains("epoch 7"));
            } else {
                assert_eq!(*r.as_ref().unwrap(), i as u32 * 3);
            }
        }
        // The all-or-nothing wrapper propagates the same diagnosis.
        let err = parallel_indexed(10, 4, |i| {
            if i == 7 {
                panic!("boom");
            }
            i
        })
        .unwrap_err();
        assert_eq!(err.index, 7);
    }

    fn tiny_epoch_analysis(e: EpochId) -> EpochAnalysis {
        let mut d = EpochData::default();
        d.push(
            SessionAttrs::new([1, 1, 1, 0, 0, 0, 0]),
            QualityMeasurement::joined(400, 300.0, 0.0, 2800.0),
        );
        EpochAnalysis::compute(
            e,
            &d,
            &Thresholds::default(),
            &SignificanceParams::default(),
            &CriticalParams::default(),
        )
    }

    #[test]
    fn one_poisoned_epoch_degrades_the_trace_instead_of_killing_it() {
        let config = AnalyzerConfig::default();
        let trace = analyze_epochs_with(EpochId(0), 5, &config, |e| {
            if e == EpochId(2) {
                panic!("cube exploded");
            }
            tiny_epoch_analysis(e)
        });
        assert_eq!(trace.num_input_epochs(), 5);
        assert_eq!(trace.len(), 4, "the poisoned epoch is excluded");
        assert!(!trace.is_complete());
        let failed: Vec<_> = trace.failed_epochs().collect();
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].0, EpochId(2));
        assert!(failed[0].1.contains("cube exploded"));
        // The surviving epochs are intact and in order.
        let ids: Vec<u32> = trace.epochs().iter().map(|a| a.epoch.0).collect();
        assert_eq!(ids, vec![0, 1, 3, 4]);
        assert_eq!(trace.total_sessions(), 4);
    }

    #[test]
    fn ingest_report_marks_epochs_degraded() {
        let config = AnalyzerConfig::default();
        let mut trace = analyze_epochs_with(EpochId(0), 3, &config, tiny_epoch_analysis);
        assert!(trace.is_complete());
        let mut report = vqlens_model::csv::IngestReport::default();
        report.per_epoch_bad.insert(1, 4);
        report.per_epoch_bad.insert(99, 1); // out of range: ignored
        trace.apply_ingest_report(&report);
        assert!(!trace.is_complete());
        let degraded: Vec<_> = trace.degraded_epochs().collect();
        assert_eq!(
            degraded,
            vec![(
                EpochId(1),
                &[DegradeCause::QuarantinedLines { lines: 4 }][..]
            )]
        );
        // Degraded epochs are still analyzed.
        assert_eq!(trace.len(), 3);
        // A second report accumulates a second cause on the same epoch.
        trace.apply_ingest_report(&report);
        let (_, causes) = trace.degraded_epochs().next().unwrap();
        assert_eq!(causes.len(), 2);
    }

    /// Regression: statuses used to be keyed by slice position, so a trace
    /// whose first epoch is nonzero mis-labeled failures, degradations, and
    /// report outcomes by `first_epoch` epochs.
    #[test]
    fn nonzero_first_epoch_keeps_real_epoch_ids() {
        let config = AnalyzerConfig::default();
        let first = EpochId(5);
        let mut trace = analyze_epochs_with(first, 4, &config, |e| {
            if e == EpochId(6) {
                panic!("poisoned");
            }
            tiny_epoch_analysis(e)
        });
        assert_eq!(trace.num_input_epochs(), 4);
        // The failure is reported at real epoch 6, not slice index 1.
        let failed: Vec<_> = trace.failed_epochs().map(|(e, _)| e).collect();
        assert_eq!(failed, vec![EpochId(6)]);
        // Ingest quarantine counts are matched by real epoch id too: epoch
        // 1 is before the trace and must be ignored, epoch 7 must land on
        // the third slot.
        let mut report = vqlens_model::csv::IngestReport::default();
        report.per_epoch_bad.insert(1, 9);
        report.per_epoch_bad.insert(7, 3);
        trace.apply_ingest_report(&report);
        let degraded: Vec<_> = trace.degraded_epochs().collect();
        assert_eq!(
            degraded,
            vec![(
                EpochId(7),
                &[DegradeCause::QuarantinedLines { lines: 3 }][..]
            )]
        );
        // epoch_outcomes carries the same real ids into the run report.
        let outcome_epochs: Vec<u32> = trace.epoch_outcomes().iter().map(|o| o.epoch()).collect();
        assert_eq!(outcome_epochs, vec![5, 6, 7, 8]);
        // The analyzed epochs themselves kept their ids.
        let ids: Vec<u32> = trace.epochs().iter().map(|a| a.epoch.0).collect();
        assert_eq!(ids, vec![5, 7, 8]);
    }

    #[test]
    fn parallel_generation_matches_serial() {
        let scenario = Scenario::smoke();
        let par = generate_parallel(&scenario, 4);
        let ser = vqlens_synth::scenario::generate(&scenario);
        assert_eq!(par.dataset.num_sessions(), ser.dataset.num_sessions());
        for (e, data) in ser.dataset.iter_epochs() {
            assert_eq!(par.dataset.epoch(e).attrs, data.attrs);
        }
    }

    #[test]
    fn analysis_is_thread_count_invariant() {
        let scenario = Scenario::smoke();
        let out = generate_parallel(&scenario, 0);
        let mut config = AnalyzerConfig::for_scenario(&scenario);
        config.threads = 1;
        let a = analyze_dataset(&out.dataset, &config);
        // 8 exercises the chunked outer fan-out; 96 > 4 × epochs forces the
        // intra-epoch parallel cube build (intra = 96 / 24 = 4) on top.
        for threads in [8, 96] {
            config.threads = threads;
            let b = analyze_dataset(&out.dataset, &config);
            assert_eq!(a.len(), b.len());
            assert!(a.is_complete() && b.is_complete());
            for (x, y) in a.epochs().iter().zip(b.epochs()) {
                assert_eq!(x.epoch, y.epoch);
                assert_eq!(x.total_sessions, y.total_sessions);
                for m in Metric::ALL {
                    // Identical cluster *sets*, not just identical counts.
                    let keys = |s: &vqlens_cluster::problem::ProblemSet| {
                        let mut v: Vec<u64> = s.clusters.keys().map(|k| k.0).collect();
                        v.sort_unstable();
                        v
                    };
                    let ckeys = |s: &vqlens_cluster::critical::CriticalSet| {
                        let mut v: Vec<u64> = s.clusters.keys().map(|k| k.0).collect();
                        v.sort_unstable();
                        v
                    };
                    assert_eq!(keys(&x.metric(m).problems), keys(&y.metric(m).problems));
                    assert_eq!(ckeys(&x.metric(m).critical), ckeys(&y.metric(m).critical));
                    assert_eq!(
                        x.metric(m).critical.problems_attributed,
                        y.metric(m).critical.problems_attributed,
                        "threads={threads} metric={m}"
                    );
                }
            }
        }
        assert_eq!(a.total_sessions(), out.dataset.num_sessions() as u64);
        assert!(a.total_problems(Metric::Bitrate) > 0);
    }

    #[test]
    fn surplus_threads_go_to_intra_epoch_parallelism() {
        // Direct check of the seam analyze_dataset uses: the same epoch
        // analyzed with 1 and with several intra-epoch threads must agree
        // exactly (the cube build is bit-for-bit invariant).
        let scenario = Scenario::smoke();
        let out = generate_parallel(&scenario, 0);
        let config = AnalyzerConfig::for_scenario(&scenario);
        let data = out.dataset.epoch(EpochId(0));
        let serial = EpochAnalysis::compute(
            EpochId(0),
            data,
            &config.thresholds,
            &config.significance,
            &config.critical,
        );
        let parallel = EpochAnalysis::compute_with_threads(
            EpochId(0),
            data,
            &config.thresholds,
            &config.significance,
            &config.critical,
            4,
        );
        assert_eq!(serial.total_sessions, parallel.total_sessions);
        for m in Metric::ALL {
            assert_eq!(
                serial.metric(m).problems.global_ratio,
                parallel.metric(m).problems.global_ratio
            );
            assert_eq!(
                serial.metric(m).problems.len(),
                parallel.metric(m).problems.len()
            );
            assert_eq!(
                serial.metric(m).critical.problems_attributed,
                parallel.metric(m).critical.problems_attributed
            );
        }
    }
}
