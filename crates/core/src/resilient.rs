//! The resilient analysis driver: [`analyze_dataset`](crate::pipeline::analyze_dataset) with epoch-granular
//! checkpointing, soft stage deadlines, and the memory-budget degradation
//! ladder from `vqlens-resilience`.
//!
//! [`analyze_dataset_resilient`] is a superset of
//! [`analyze_dataset`](crate::pipeline::analyze_dataset): with default
//! [`ResilienceOptions`] it computes exactly the same trace. Each option
//! adds one bounded behavior:
//!
//! * **Checkpointing** (`checkpoint_dir`): after each epoch's analysis the
//!   result is persisted atomically (write-temp-then-rename) into the
//!   directory, keyed by a manifest of input/config fingerprints. A rerun
//!   over the same input and config resumes — completed epochs load from
//!   disk and only the missing ones are computed; any mismatch wipes the
//!   stale files first, so a changed config can never smuggle old results
//!   into a new run.
//! * **Deadlines** (`deadlines.epoch_soft_ms`): each epoch's analysis is
//!   timed against the soft budget; a breach marks the epoch
//!   `Degraded(TimedOut)` and the run continues (the stages are CPU-bound
//!   with no cancellation points — see `vqlens-resilience`'s deadline
//!   module for why hard cancellation is the wrong tool here).
//! * **Memory budget** (`max_mem_bytes`): an upper-envelope estimate of
//!   the run's footprint is compared to the budget and, when over, the
//!   degradation ladder steps down (drop optional analyses → raise the
//!   prune floor → sample sessions), every step recorded in the run
//!   report's `ladder` array and sampled epochs marked
//!   `Degraded(Sampled)`.
//!
//! Failed (panicked) epochs are never checkpointed, so a resume retries
//! them. Checkpoints are saved *before* any ingest report is applied, so
//! persisted statuses carry only `TimedOut`/`Sampled` causes; quarantine
//! causes are re-derived by the resuming run's own ingest.
//!
//! The **open epoch** — the highest non-empty one, the epoch a live
//! deployment would still be appending into — is analyzed through the
//! incremental delta path ([`IncrementalEpoch`]: batched appends folded
//! by `CubeTable::merge`) instead of a monolithic build. The
//! `incremental-equivalence` oracle pins that path bit-identical to the
//! from-scratch analysis, so the trace is unchanged; what changes is
//! that every batch run exercises the same code a restarted `vqlens
//! serve` replays its WAL through.

use crate::config::AnalyzerConfig;
use crate::pipeline::{
    parallel_indexed_caught, record_degrade, DegradeCause, EpochStatus, TraceAnalysis,
};
use std::collections::HashMap;
use std::io;
use std::path::PathBuf;
use vqlens_cluster::analyze::{EpochAnalysis, IncrementalEpoch};
use vqlens_model::dataset::Dataset;
use vqlens_model::epoch::EpochId;
use vqlens_obs as obs;
use vqlens_resilience::{
    fingerprint_dataset, fingerprint_json, watch, CheckpointStore, EpochCheckpoint, LadderStep,
    Manifest, StageDeadlines,
};

/// Knobs of a resilient run. The default — no checkpoint directory, no
/// deadlines, no memory budget — reproduces plain
/// [`analyze_dataset`](crate::pipeline::analyze_dataset) exactly.
#[derive(Debug, Clone, Default)]
pub struct ResilienceOptions {
    /// Checkpoint directory: save each completed epoch here and resume
    /// from whatever valid epochs the directory already holds.
    pub checkpoint_dir: Option<PathBuf>,
    /// Soft wall-clock deadlines.
    pub deadlines: StageDeadlines,
    /// Byte budget for the run's estimated memory envelope; exceeding it
    /// walks the degradation ladder.
    pub max_mem_bytes: Option<u64>,
}

/// What the resilient driver did beyond the analysis itself.
#[derive(Debug, Clone, Default)]
pub struct ResumeSummary {
    /// Epochs loaded from valid checkpoints instead of being recomputed.
    pub resumed_epochs: usize,
    /// Epochs computed (and, with a checkpoint directory, saved) this run.
    pub computed_epochs: usize,
    /// Degradation-ladder steps applied, in order; empty when the run fit
    /// its budget (or had none).
    pub ladder: Vec<LadderStep>,
}

impl ResumeSummary {
    /// True when the ladder dropped the optional trailing analyses
    /// (drill-down, what-if); callers honor this by skipping them.
    pub fn drop_optional(&self) -> bool {
        self.ladder
            .iter()
            .any(|s| matches!(s, LadderStep::DropOptionalAnalyses))
    }

    /// The session-sampling stride applied by the ladder, if any.
    pub fn sample_stride(&self) -> Option<u32> {
        self.ladder.iter().find_map(|s| match s {
            LadderStep::SampleSessions { keep_1_in } => Some(*keep_1_in),
            _ => None,
        })
    }
}

/// Analyze a dataset with checkpoint/resume, soft deadlines, and a memory
/// budget (see the module docs). Returns the trace plus a summary of the
/// resilience machinery's actions. The trace's `config` is the *effective*
/// configuration — the ladder may have raised the significance floor.
///
/// The dataset is `&mut` because the ladder's last rung thins sessions in
/// place; without `max_mem_bytes` (or within budget) it is never touched.
///
/// Errors only on checkpoint-directory I/O failures: an unreadable or
/// unwritable checkpoint directory defeats the durability the caller
/// asked for, so it fails loudly instead of degrading silently.
pub fn analyze_dataset_resilient(
    dataset: &mut Dataset,
    config: &AnalyzerConfig,
    opts: &ResilienceOptions,
) -> io::Result<(TraceAnalysis, ResumeSummary)> {
    let mut effective = *config;
    let n = dataset.num_epochs();
    let concurrency = effective.effective_threads().min(n.max(1) as usize);

    // Rung by rung: each step's saving was already modeled by the planner,
    // so applying them in order lands the run inside (or best-effort near)
    // the budget.
    let mut ladder = Vec::new();
    let mut sample_causes: HashMap<u32, DegradeCause> = HashMap::new();
    if let Some(max_bytes) = opts.max_mem_bytes {
        let est = vqlens_resilience::estimate(dataset, concurrency);
        ladder =
            vqlens_resilience::plan_ladder(&est, max_bytes, effective.significance.min_sessions);
        for step in &ladder {
            obs::global().record_ladder_step(&step.label());
            match *step {
                LadderStep::DropOptionalAnalyses => {}
                LadderStep::RaisePruneFloor { to, .. } => {
                    effective.significance.min_sessions = to;
                }
                LadderStep::SampleSessions { keep_1_in } => {
                    for (epoch, cause) in vqlens_resilience::apply_sampling(dataset, keep_1_in) {
                        sample_causes.insert(epoch.0, cause);
                    }
                }
            }
        }
    }
    let dataset = &*dataset;

    // The manifest fingerprints the *effective* post-ladder state: stride
    // sampling is deterministic, so a rerun with the same budget samples
    // identically and the fingerprints line up. Thread count is zeroed —
    // results are thread-count invariant.
    let mut hashed = effective;
    hashed.threads = 0;
    let manifest = Manifest::new(fingerprint_json(&hashed), fingerprint_dataset(dataset), n);
    let (store, resumed) = match &opts.checkpoint_dir {
        Some(dir) => {
            let (store, resumed) = CheckpointStore::open(dir, manifest)?;
            (Some(store), resumed)
        }
        None => (None, Vec::new()),
    };
    let mut done: HashMap<u32, EpochCheckpoint> =
        resumed.into_iter().map(|cp| (cp.epoch, cp)).collect();
    let resumed_epochs = done.len();

    // The open epoch (highest non-empty) goes through the incremental
    // delta path below — bit-identical by the incremental-equivalence
    // oracle, and it keeps the merge machinery exercised on every run.
    let open_epoch = (0..n)
        .rev()
        .find(|&e| !dataset.epoch(EpochId(e)).is_empty());

    let pending: Vec<u32> = (0..n).filter(|e| !done.contains_key(e)).collect();
    let intra = if pending.is_empty() {
        1
    } else {
        (effective.effective_threads() / pending.len()).max(1)
    };
    let budget_ms = opts.deadlines.epoch_soft_ms;
    let store_ref = store.as_ref();
    let results = {
        let _span = obs::global().span(obs::Stage::TraceAnalysis);
        let pending = &pending;
        let sample_causes = &sample_causes;
        parallel_indexed_caught(
            pending.len() as u32,
            effective.effective_threads(),
            move |i| {
                let epoch = EpochId(pending[i as usize]);
                let _obs = obs::global().span_epoch(obs::Stage::EpochAnalysis, epoch.0);
                let (analysis, breach) = watch(budget_ms, || {
                    if Some(epoch.0) == open_epoch {
                        analyze_open_epoch(epoch, dataset, &effective)
                    } else {
                        EpochAnalysis::compute_with_threads(
                            epoch,
                            dataset.epoch(epoch),
                            &effective.thresholds,
                            &effective.significance,
                            &effective.critical,
                            intra,
                        )
                    }
                });
                let mut status = EpochStatus::Ok;
                if let Some(cause) = sample_causes.get(&epoch.0) {
                    record_degrade(&mut status, cause.clone());
                }
                if let Some(b) = breach {
                    record_degrade(
                        &mut status,
                        DegradeCause::TimedOut {
                            elapsed_ms: b.elapsed_ms,
                            budget_ms: b.budget_ms,
                        },
                    );
                }
                // Persist from the worker so a kill mid-run loses at most
                // the epochs still in flight. I/O errors are carried back
                // as strings (WorkerPanic owns the Err slot).
                let save_error = store_ref.and_then(|s| {
                    s.save_epoch(&EpochCheckpoint {
                        epoch: epoch.0,
                        status: status.clone(),
                        analysis: analysis.clone(),
                    })
                    .err()
                    .map(|e| e.to_string())
                });
                (analysis, status, save_error)
            },
        )
    };

    let rec = obs::global();
    let mut computed = results.into_iter();
    let mut first_save_error: Option<String> = None;
    let mut epochs = Vec::with_capacity(n as usize);
    let mut statuses = Vec::with_capacity(n as usize);
    for e in 0..n {
        let id = EpochId(e);
        if let Some(cp) = done.remove(&e) {
            // A resumed degraded epoch is degraded in this run's results
            // too, so it counts toward this run's degraded-epoch tally.
            if matches!(cp.status, EpochStatus::Degraded { .. }) {
                rec.incr(obs::Counter::EpochsDegraded);
            }
            debug_assert_eq!(cp.analysis.epoch, id);
            epochs.push(cp.analysis);
            statuses.push((id, cp.status));
            continue;
        }
        match computed.next().expect("one result per pending epoch") {
            Ok((analysis, status, save_error)) => {
                rec.incr(obs::Counter::EpochsAnalyzed);
                if let Some(msg) = save_error {
                    first_save_error.get_or_insert(msg);
                }
                debug_assert_eq!(analysis.epoch, id);
                epochs.push(analysis);
                statuses.push((id, status));
            }
            Err(panic) => {
                rec.incr(obs::Counter::EpochsFailed);
                statuses.push((
                    id,
                    EpochStatus::Failed {
                        reason: panic.message,
                    },
                ));
            }
        }
    }
    if let Some(msg) = first_save_error {
        return Err(io::Error::other(format!("checkpoint write failed: {msg}")));
    }

    let summary = ResumeSummary {
        resumed_epochs,
        computed_epochs: pending.len(),
        ladder,
    };
    Ok((
        TraceAnalysis::from_parts(effective, epochs, statuses),
        summary,
    ))
}

/// Sessions folded per batch when replaying the open epoch through the
/// incremental path. Small enough to exercise several merges on real
/// epochs, large enough that merge overhead stays negligible.
const OPEN_EPOCH_BATCH: usize = 4096;

/// Analyze the open epoch via [`IncrementalEpoch`]: append its sessions
/// in batches, settling (merging) at every boundary, exactly as a live
/// server folding group commits would. Bit-identical to
/// [`EpochAnalysis::compute`] by the incremental-equivalence oracle.
fn analyze_open_epoch(epoch: EpochId, dataset: &Dataset, config: &AnalyzerConfig) -> EpochAnalysis {
    let mut inc = IncrementalEpoch::new(epoch, &config.thresholds, &config.significance);
    for (i, (attrs, quality)) in dataset.epoch(epoch).iter().enumerate() {
        inc.push(attrs, quality);
        if (i + 1) % OPEN_EPOCH_BATCH == 0 {
            inc.settle();
        }
    }
    inc.analysis(&config.critical)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{analyze_dataset, generate_parallel};
    use std::fs;
    use std::path::Path;
    use vqlens_model::metric::Metric;
    use vqlens_synth::scenario::Scenario;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("vqlens-resilient-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn smoke() -> (Dataset, AnalyzerConfig) {
        let scenario = Scenario::smoke();
        let out = generate_parallel(&scenario, 0);
        let mut config = AnalyzerConfig::for_scenario(&scenario);
        config.threads = 2;
        (out.dataset, config)
    }

    fn cluster_keys(trace: &TraceAnalysis) -> Vec<(u32, Vec<u64>)> {
        trace
            .epochs()
            .iter()
            .map(|a| {
                let mut keys: Vec<u64> = a
                    .metric(Metric::BufRatio)
                    .critical
                    .clusters
                    .keys()
                    .map(|k| k.0)
                    .collect();
                keys.sort_unstable();
                (a.epoch.0, keys)
            })
            .collect()
    }

    #[test]
    fn default_options_match_plain_analyze() {
        let (dataset, config) = smoke();
        let baseline = analyze_dataset(&dataset, &config);
        let mut ds = dataset.clone();
        let (trace, summary) =
            analyze_dataset_resilient(&mut ds, &config, &ResilienceOptions::default()).unwrap();
        assert_eq!(summary.resumed_epochs, 0);
        assert_eq!(summary.computed_epochs, baseline.num_input_epochs());
        assert!(summary.ladder.is_empty());
        assert!(trace.is_complete());
        assert_eq!(cluster_keys(&trace), cluster_keys(&baseline));
        assert_eq!(trace.total_sessions(), baseline.total_sessions());
    }

    #[test]
    fn open_epoch_delta_path_matches_monolithic_build() {
        let (dataset, config) = smoke();
        let open = (0..dataset.num_epochs())
            .rev()
            .map(EpochId)
            .find(|id| !dataset.epoch(*id).is_empty())
            .expect("smoke trace has sessions");
        let incremental = analyze_open_epoch(open, &dataset, &config);
        let monolithic = EpochAnalysis::compute(
            open,
            dataset.epoch(open),
            &config.thresholds,
            &config.significance,
            &config.critical,
        );
        assert_eq!(incremental.total_sessions, monolithic.total_sessions);
        for m in Metric::ALL {
            let (a, b) = (incremental.metric(m), monolithic.metric(m));
            assert_eq!(
                a.problems.global_ratio.to_bits(),
                b.problems.global_ratio.to_bits()
            );
            assert_eq!(a.problems.clusters, b.problems.clusters);
            assert_eq!(a.critical.clusters.len(), b.critical.clusters.len());
            assert_eq!(
                a.critical.problems_attributed.to_bits(),
                b.critical.problems_attributed.to_bits()
            );
        }
    }

    #[test]
    fn interrupted_run_resumes_and_matches_uninterrupted() {
        let (dataset, config) = smoke();
        let dir = scratch_dir("resume");
        let baseline = analyze_dataset(&dataset, &config);
        let opts = ResilienceOptions {
            checkpoint_dir: Some(dir.clone()),
            ..ResilienceOptions::default()
        };

        // Full checkpointed run, then simulate a crash that lost the last
        // few epochs' checkpoints.
        let (_, summary) = analyze_dataset_resilient(&mut dataset.clone(), &config, &opts).unwrap();
        assert_eq!(summary.computed_epochs, baseline.num_input_epochs());
        let mut names: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with("epoch-"))
            .collect();
        names.sort();
        let lost = names.split_off(names.len() - 2);
        for name in &lost {
            fs::remove_file(dir.join(name)).unwrap();
        }

        let (resumed, summary) =
            analyze_dataset_resilient(&mut dataset.clone(), &config, &opts).unwrap();
        assert_eq!(summary.resumed_epochs, names.len());
        assert_eq!(summary.computed_epochs, lost.len());
        assert!(resumed.is_complete());
        assert_eq!(cluster_keys(&resumed), cluster_keys(&baseline));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn changed_config_invalidates_checkpoints() {
        let (dataset, config) = smoke();
        let dir = scratch_dir("invalidate");
        let opts = ResilienceOptions {
            checkpoint_dir: Some(dir.clone()),
            ..ResilienceOptions::default()
        };
        analyze_dataset_resilient(&mut dataset.clone(), &config, &opts).unwrap();

        let mut changed = config;
        changed.significance.min_sessions += 1;
        let (_, summary) =
            analyze_dataset_resilient(&mut dataset.clone(), &changed, &opts).unwrap();
        assert_eq!(
            summary.resumed_epochs, 0,
            "stale checkpoints must not resume"
        );
        assert_eq!(summary.computed_epochs, dataset.num_epochs() as usize);

        // A different thread count, however, resumes fine.
        let mut threads_only = config;
        threads_only.threads = 7;
        analyze_dataset_resilient(&mut dataset.clone(), &config, &opts).unwrap();
        let (_, summary) =
            analyze_dataset_resilient(&mut dataset.clone(), &threads_only, &opts).unwrap();
        assert_eq!(summary.resumed_epochs, dataset.num_epochs() as usize);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tiny_memory_budget_walks_the_full_ladder() {
        let (dataset, config) = smoke();
        let mut ds = dataset.clone();
        let opts = ResilienceOptions {
            max_mem_bytes: Some(1), // impossible: every rung fires
            ..ResilienceOptions::default()
        };
        let (trace, summary) = analyze_dataset_resilient(&mut ds, &config, &opts).unwrap();
        assert!(summary.drop_optional());
        let stride = summary.sample_stride().expect("sampling rung reached");
        assert!(stride >= 2);
        assert!(
            trace.config.significance.min_sessions > config.significance.min_sessions,
            "prune floor was raised"
        );
        // Sampled epochs carry the cause with real counts.
        let degraded: Vec<_> = trace.degraded_epochs().collect();
        assert!(!degraded.is_empty());
        for (epoch, causes) in degraded {
            let full = dataset.epoch(epoch).len() as u64;
            assert!(causes.iter().any(|c| matches!(
                c,
                DegradeCause::Sampled { kept, of }
                    if *of == full && *kept < *of
            )));
        }
        assert!(ds.num_sessions() < dataset.num_sessions());
    }

    #[test]
    fn generous_budgets_change_nothing() {
        let (dataset, config) = smoke();
        let mut ds = dataset.clone();
        let opts = ResilienceOptions {
            deadlines: StageDeadlines {
                epoch_soft_ms: Some(u64::MAX),
                optional_soft_ms: None,
            },
            max_mem_bytes: Some(u64::MAX),
            ..ResilienceOptions::default()
        };
        let (trace, summary) = analyze_dataset_resilient(&mut ds, &config, &opts).unwrap();
        assert!(summary.ladder.is_empty());
        assert!(trace.is_complete(), "no breach, no sampling, no causes");
        assert_eq!(ds.num_sessions(), dataset.num_sessions());
    }

    #[test]
    fn torn_checkpoint_is_recomputed_on_resume() {
        let (dataset, config) = smoke();
        let dir = scratch_dir("torn");
        let opts = ResilienceOptions {
            checkpoint_dir: Some(dir.clone()),
            ..ResilienceOptions::default()
        };
        let baseline = analyze_dataset(&dataset, &config);
        analyze_dataset_resilient(&mut dataset.clone(), &config, &opts).unwrap();
        // Tear the first epoch file in half, as a crashed machine might.
        let torn = first_epoch_file(&dir);
        let bytes = fs::read(&torn).unwrap();
        fs::write(&torn, &bytes[..bytes.len() / 2]).unwrap();

        let (resumed, summary) =
            analyze_dataset_resilient(&mut dataset.clone(), &config, &opts).unwrap();
        assert_eq!(summary.computed_epochs, 1, "only the torn epoch recomputes");
        assert_eq!(cluster_keys(&resumed), cluster_keys(&baseline));
        let _ = fs::remove_dir_all(&dir);
    }

    fn first_epoch_file(dir: &Path) -> PathBuf {
        let mut names: Vec<String> = fs::read_dir(dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with("epoch-"))
            .collect();
        names.sort();
        dir.join(&names[0])
    }
}
