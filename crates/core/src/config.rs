//! Analyzer configuration.

use serde::{Deserialize, Serialize};
use vqlens_cluster::critical::CriticalParams;
use vqlens_cluster::problem::SignificanceParams;
use vqlens_model::metric::Thresholds;
use vqlens_synth::scenario::Scenario;

/// Full configuration of the analysis pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct AnalyzerConfig {
    /// Problem-session thresholds (paper §2).
    pub thresholds: Thresholds,
    /// Problem-cluster significance (paper §3.1).
    pub significance: SignificanceParams,
    /// Critical-cluster knobs (paper §3.2).
    pub critical: CriticalParams,
    /// Worker threads for the per-epoch parallel stages; 0 = all cores.
    pub threads: usize,
}

impl AnalyzerConfig {
    /// Paper-default thresholds with the significance floor scaled to a
    /// scenario's traffic volume (see DESIGN.md §2).
    pub fn for_scenario(scenario: &Scenario) -> AnalyzerConfig {
        AnalyzerConfig {
            significance: SignificanceParams::scaled_to(
                scenario.arrivals.sessions_per_epoch as u64,
            ),
            ..AnalyzerConfig::default()
        }
    }

    /// Resolve the worker-thread count.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_config_scales_significance() {
        let s = Scenario::paper_default();
        let c = AnalyzerConfig::for_scenario(&s);
        assert_eq!(c.significance.min_sessions, s.scaled_min_sessions());
        assert_eq!(c.thresholds, Thresholds::default());
    }

    #[test]
    fn threads_resolve() {
        let mut c = AnalyzerConfig::default();
        assert!(c.effective_threads() >= 1);
        c.threads = 3;
        assert_eq!(c.effective_threads(), 3);
    }
}
