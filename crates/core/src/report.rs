//! Plain-text and JSON report rendering.
//!
//! The reproduction binaries print the paper's tables as fixed-width text
//! (for EXPERIMENTS.md) and can dump any figure's data series as JSON for
//! external plotting.

use serde::Serialize;
use std::fmt;

/// A simple fixed-width text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; must match the header arity.
    ///
    /// # Panics
    /// Panics when the row width differs from the header width.
    pub fn row(&mut self, cells: &[String]) -> &mut Table {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience: append a row of displayable cells.
    pub fn row_display(&mut self, cells: &[&dyn fmt::Display]) -> &mut Table {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        if !self.title.is_empty() {
            writeln!(f, "## {}", self.title)?;
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (w, cell) in widths.iter().zip(cells) {
                write!(f, " {cell:<w$} |")?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{}|", "-".repeat(w + 2))?;
        }
        writeln!(f)?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Format a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Format a float with a sensible number of digits for tables.
pub fn num(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 100.0 {
        format!("{x:.0}")
    } else if x.abs() >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.4}")
    }
}

/// Serialize any data series to pretty JSON (for external plotting).
pub fn to_json<T: Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(value).expect("report values serialize")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown_ish_table() {
        let mut t = Table::new("Demo", &["metric", "value"]);
        t.row(&["BufRatio".into(), "0.097".into()]);
        t.row(&["JoinTime".into(), "0.05".into()]);
        let s = t.to_string();
        assert!(s.contains("## Demo"));
        assert!(s.contains("| metric   | value |"));
        assert!(s.contains("| BufRatio | 0.097 |"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.123), "12.3%");
        assert_eq!(num(0.0), "0");
        assert_eq!(num(1234.5), "1234"); // round-half-even
        assert_eq!(num(3.14159), "3.14");
        assert_eq!(num(0.04567), "0.0457");
    }

    #[test]
    fn json_roundtrips() {
        #[derive(Serialize)]
        struct P {
            x: f64,
            y: f64,
        }
        let s = to_json(&vec![P { x: 1.0, y: 2.0 }]);
        assert!(s.contains("\"x\": 1.0"));
    }
}
