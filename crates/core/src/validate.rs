//! Ground-truth validation: did the pipeline recover the planted causes?
//!
//! The original paper had no ground truth — it could only argue its
//! critical clusters were *plausible* causes. The synthetic substrate knows
//! the actual causes, so this module measures the pipeline directly:
//!
//! * **recall** — of the (event, epoch) pairs where a planted event was
//!   active *and statistically visible* (enough in-scope sessions and an
//!   elevated problem ratio on one of its expected metrics), in what
//!   fraction did the analysis emit a matching critical cluster?
//! * **precision** — of the critical clusters emitted, what fraction match
//!   an active planted event (exactly, or as a refinement/generalization)?
//!
//! A critical cluster "matches" an event when its key equals the event's
//! expected cluster, or one generalizes the other (correlated attributes
//! legitimately shift the phase transition up or down one level — e.g. a
//! site that uses a single CDN may be reported as the site, the CDN, or
//! both with split attribution).

use crate::pipeline::TraceAnalysis;
use serde::{Deserialize, Serialize};
use vqlens_model::attr::ClusterKey;
use vqlens_model::dataset::Dataset;
use vqlens_model::metric::Metric;
use vqlens_stats::FxHashMap;
use vqlens_synth::events::GroundTruth;
use vqlens_synth::structural::structurally_explained;
use vqlens_synth::world::World;

/// Detection summary of one planted event.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EventDetection {
    /// The planted event's id.
    pub event_id: u32,
    /// The planted event's name.
    pub name: String,
    /// Epochs the event was active.
    pub active_epochs: u32,
    /// Active epochs in which the event was statistically visible.
    pub visible_epochs: u32,
    /// Visible epochs in which a matching critical cluster was found on
    /// any of the event's expected metrics.
    pub detected_epochs: u32,
}

impl EventDetection {
    /// Detection rate over visible epochs (`None` when never visible).
    pub fn recall(&self) -> Option<f64> {
        (self.visible_epochs > 0)
            .then(|| f64::from(self.detected_epochs) / f64::from(self.visible_epochs))
    }
}

/// Trace-level validation result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ValidationReport {
    /// Per-event detection summaries.
    pub events: Vec<EventDetection>,
    /// Micro-averaged recall over visible (event, epoch) pairs.
    pub recall: f64,
    /// Fraction of emitted critical clusters matching an active event.
    pub event_precision: f64,
    /// Fraction of emitted critical clusters matching an active event *or*
    /// a known structural cause of the synthetic world (single-bitrate
    /// sites, wireless connections, poor/wireless/non-US ASNs, in-house or
    /// ISP-run CDNs, cross-region player-module hosts).
    pub precision: f64,
    /// Total (critical cluster, epoch, metric) emissions examined.
    pub emitted: u64,
}

/// Does a found critical cluster match an expected event cluster?
fn matches(found: ClusterKey, expected: ClusterKey) -> bool {
    found == expected || found.generalizes(expected) || expected.generalizes(found)
}

/// Validate a trace analysis against the planted ground truth.
///
/// `min_sessions` should be the significance floor used by the analysis;
/// an event is *visible* in an epoch when at least that many sessions were
/// in scope and its in-scope problem ratio cleared the analysis's own
/// significance multiple on one of its expected metrics.
///
/// Structural-cause matching indexes the world by dictionary id, relying on
/// the id == world-index invariant that `synth::scenario::prepare`
/// establishes — only validate traces generated through that path.
pub fn validate_against_ground_truth(
    dataset: &Dataset,
    world: &World,
    trace: &TraceAnalysis,
    ground_truth: &GroundTruth,
    min_sessions: u64,
) -> ValidationReport {
    let thresholds = &trace.config.thresholds;
    let sig = &trace.config.significance;
    let mut detections: Vec<EventDetection> = ground_truth
        .events
        .iter()
        .map(|e| EventDetection {
            event_id: e.id,
            name: e.name.clone(),
            active_epochs: 0,
            visible_epochs: 0,
            detected_epochs: 0,
        })
        .collect();

    let mut emitted = 0u64;
    let mut emitted_matching_event = 0u64;
    let mut emitted_explained = 0u64;

    for analysis in trace.epochs() {
        let epoch = analysis.epoch;
        let active: Vec<usize> = ground_truth.active_at(epoch);
        if active.is_empty() {
            // Precision still counts emissions in event-free epochs; only
            // structural causes can explain them.
            for m in Metric::ALL {
                for key in analysis.metric(m).critical.clusters.keys() {
                    emitted += 1;
                    if structurally_explained(world, *key, m) {
                        emitted_explained += 1;
                    }
                }
            }
            continue;
        }

        // One pass over the epoch's sessions: per active event, in-scope
        // session and per-metric problem counts.
        let data = dataset.epoch(epoch);
        let mut in_scope: FxHashMap<usize, (u64, [u64; 4])> = FxHashMap::default();
        for (attrs, quality) in data.iter() {
            // Classify once per session, not once per matching event.
            let flags = thresholds.problem_flags(quality);
            for &idx in &active {
                if ground_truth.events[idx].scope.matches(attrs) {
                    let entry = in_scope.entry(idx).or_default();
                    entry.0 += 1;
                    for m in Metric::ALL {
                        if flags.is_problem(m) {
                            entry.1[m.index()] += 1;
                        }
                    }
                }
            }
        }

        for &idx in &active {
            let event = &ground_truth.events[idx];
            let det = &mut detections[idx];
            det.active_epochs += 1;
            let Some((sessions, problems)) = in_scope.get(&idx) else {
                continue;
            };
            if *sessions < min_sessions {
                continue;
            }
            // Visibility mirrors the analysis's own significance test so
            // recall is judged against what the pipeline could possibly
            // have flagged (same multiplier and problem floor).
            let visible = event.expected_metrics.iter().any(|m| {
                let ma = analysis.metric(*m);
                let global = ma.critical.global_ratio;
                let ratio = problems[m.index()] as f64 / *sessions as f64;
                ratio >= sig.ratio_multiplier * global
                    && problems[m.index()] >= sig.min_problem_sessions.max(1)
            });
            if !visible {
                continue;
            }
            det.visible_epochs += 1;
            let expected = event.scope.expected_cluster();
            let found = event.expected_metrics.iter().any(|m| {
                analysis
                    .metric(*m)
                    .critical
                    .clusters
                    .keys()
                    .any(|k| matches(*k, expected))
            });
            if found {
                det.detected_epochs += 1;
            }
        }

        // Precision: each emitted critical cluster should correspond to an
        // active event (or refinement/generalization), or to a structural
        // cause of the world.
        for m in Metric::ALL {
            for key in analysis.metric(m).critical.clusters.keys() {
                emitted += 1;
                let event_matched = active
                    .iter()
                    .any(|&idx| matches(*key, ground_truth.events[idx].scope.expected_cluster()));
                if event_matched {
                    emitted_matching_event += 1;
                    emitted_explained += 1;
                } else if structurally_explained(world, *key, m) {
                    emitted_explained += 1;
                }
            }
        }
    }

    let visible_total: u32 = detections.iter().map(|d| d.visible_epochs).sum();
    let detected_total: u32 = detections.iter().map(|d| d.detected_epochs).sum();
    ValidationReport {
        events: detections,
        recall: if visible_total > 0 {
            f64::from(detected_total) / f64::from(visible_total)
        } else {
            0.0
        },
        event_precision: if emitted > 0 {
            emitted_matching_event as f64 / emitted as f64
        } else {
            0.0
        },
        precision: if emitted > 0 {
            emitted_explained as f64 / emitted as f64
        } else {
            0.0
        },
        emitted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AnalyzerConfig;
    use crate::pipeline::{analyze_dataset, generate_parallel};
    use vqlens_synth::scenario::Scenario;

    #[test]
    fn smoke_scenario_recovers_most_visible_events() {
        let scenario = Scenario::smoke();
        let out = generate_parallel(&scenario, 0);
        let config = AnalyzerConfig::for_scenario(&scenario);
        let trace = analyze_dataset(&out.dataset, &config);
        let report = validate_against_ground_truth(
            &out.dataset,
            &out.world,
            &trace,
            &out.ground_truth,
            config.significance.min_sessions,
        );
        assert_eq!(report.events.len(), out.ground_truth.len());
        assert!(
            report.recall > 0.5,
            "expected most visible planted events recovered, recall = {}",
            report.recall
        );
        assert!(report.emitted > 0);
        assert!(
            report.precision > 0.5,
            "critical clusters should track planted events or structural causes, precision = {}",
            report.precision
        );
        assert!(report.event_precision <= report.precision);
    }

    #[test]
    fn match_relation_covers_refinements() {
        use vqlens_model::attr::{AttrKey, AttrMask, SessionAttrs};
        let site = ClusterKey::of_single(AttrKey::Site, 3);
        let pair = SessionAttrs::new([0, 2, 3, 0, 0, 0, 0])
            .project(AttrMask::of(&[AttrKey::Cdn, AttrKey::Site]));
        assert!(matches(site, site));
        assert!(matches(pair, site));
        assert!(matches(site, pair));
        let other = ClusterKey::of_single(AttrKey::Site, 4);
        assert!(!matches(other, site));
        assert!(!matches(pair, other));
    }
}
