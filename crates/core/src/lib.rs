//! # vqlens-core
//!
//! The end-to-end vqlens system: a faithful reproduction of the analysis
//! pipeline from *"Shedding Light on the Structure of Internet Video
//! Quality Problems in the Wild"* (Jiang, Sekar, Stoica, Zhang —
//! CoNEXT 2013), together with the synthetic-world substrate the
//! reproduction runs on.
//!
//! ```no_run
//! use vqlens_core::prelude::*;
//!
//! // Generate a paper-shaped two-week trace with planted ground truth…
//! let scenario = Scenario::paper_default();
//! let config = AnalyzerConfig::for_scenario(&scenario);
//! let output = generate_parallel(&scenario, config.threads);
//!
//! // …run the full per-epoch cluster analysis in parallel…
//! let trace = analyze_dataset(&output.dataset, &config);
//!
//! // …and ask the paper's questions.
//! let table1 = coverage_table(trace.epochs());
//! for row in table1 {
//!     println!(
//!         "{}: {:.0} problem clusters -> {:.0} critical ({:.0}% coverage)",
//!         row.metric,
//!         row.mean_problem_clusters,
//!         row.mean_critical_clusters,
//!         100.0 * row.mean_critical_coverage,
//!     );
//! }
//! ```
//!
//! **Paper map:** this crate is the §2 end-to-end pipeline; the sections
//! themselves live in the sub-crates it re-exports — `vqlens-model`
//! (domain types), `vqlens-stats` (statistics toolkit), `vqlens-cluster`
//! (problem clusters §3.1, critical clusters §3.2), `vqlens-analysis`
//! (prevalence/persistence §4–§5), `vqlens-whatif` (what-if improvement
//! §6), `vqlens-delivery` (streaming simulator), `vqlens-synth` (world +
//! trace generation), `vqlens-obs` (run observability, cross-cutting),
//! `vqlens-resilience` (checkpoint/resume, deadlines, memory budget —
//! cross-cutting), and `vqlens-check` (paper-invariant oracles,
//! cross-cutting).
//!
//! Every stage records timings and counters into the process-global
//! [`vqlens_obs::Recorder`] (disabled by default, enabled by
//! `vqlens analyze --report-json`/`--timings`); see docs/OBSERVABILITY.md.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod config;
pub mod pipeline;
pub mod report;
pub mod resilient;
pub mod validate;

pub use config::AnalyzerConfig;
pub use pipeline::{
    analyze_dataset, generate_parallel, try_generate_parallel, DegradeCause, EpochStatus,
    TraceAnalysis, WorkerPanic,
};
pub use report::Table;
pub use resilient::{analyze_dataset_resilient, ResilienceOptions, ResumeSummary};
pub use validate::{validate_against_ground_truth, EventDetection, ValidationReport};

pub use vqlens_analysis as analysis;
pub use vqlens_check as check;
pub use vqlens_cluster as cluster;
pub use vqlens_delivery as delivery;
pub use vqlens_format as format;
pub use vqlens_model as model;
pub use vqlens_obs as obs;
pub use vqlens_resilience as resilience;
pub use vqlens_score as score;
pub use vqlens_stats as stats;
pub use vqlens_synth as synth;
pub use vqlens_whatif as whatif;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use crate::config::AnalyzerConfig;
    pub use crate::pipeline::{
        analyze_dataset, generate_parallel, try_generate_parallel, DegradeCause, EpochStatus,
        TraceAnalysis, WorkerPanic,
    };
    pub use crate::report::Table;
    pub use crate::resilient::{analyze_dataset_resilient, ResilienceOptions, ResumeSummary};
    pub use crate::validate::{validate_against_ground_truth, ValidationReport};
    pub use vqlens_analysis::breakdown::Breakdown;
    pub use vqlens_analysis::coverage::coverage_table;
    pub use vqlens_analysis::overlap::{overlap_matrix, top_critical_clusters};
    pub use vqlens_analysis::persistence::{extract_events, ClusterSource, PersistenceReport};
    pub use vqlens_analysis::prevalence::PrevalenceReport;
    pub use vqlens_analysis::timeseries::{cluster_count_series, problem_ratio_series};
    pub use vqlens_cluster::analyze::{AnalysisContext, EpochAnalysis, IncrementalEpoch};
    pub use vqlens_cluster::critical::{CriticalParams, CriticalSet};
    pub use vqlens_cluster::cube::CubeTable;
    pub use vqlens_cluster::hhh::{HhhParams, HhhSet};
    pub use vqlens_cluster::problem::{ProblemSet, SignificanceParams};
    pub use vqlens_model::attr::{AttrKey, AttrMask, ClusterKey, SessionAttrs};
    pub use vqlens_model::csv::{
        read_csv, read_csv_opts, write_csv, CsvError, IngestReport, ReadMode, ReadOptions,
    };
    pub use vqlens_model::dataset::Dataset;
    pub use vqlens_model::epoch::{EpochId, EpochRange};
    pub use vqlens_model::metric::{Metric, QualityMeasurement, Thresholds};
    pub use vqlens_obs::{Recorder, RunReport};
    pub use vqlens_resilience::{Deadline, LadderStep, StageDeadlines};
    pub use vqlens_synth::scenario::{generate, Scenario, SynthOutput};
    pub use vqlens_whatif::oracle::{oracle_sweep, AttrFilter, RankBy};
    pub use vqlens_whatif::proactive::proactive_analysis;
    pub use vqlens_whatif::reactive::{reactive_analysis, reactive_series};
}
